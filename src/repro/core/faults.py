"""Deterministic chaos injection for the execution supervisor.

The supervisor (:mod:`repro.core.supervisor`) is only trustworthy if its
recovery paths are exercised on purpose, repeatably.  This module is the
fault side of that bargain: a :class:`FaultPlan` decides — purely from a
unit's structural key, its attempt number, and the plan's seed — whether
a given execution should crash the worker process, hang, raise, or tear
the checkpoint append that records its result.  Because the decision is
a function of ``derive_seed`` over structural identity (never wall
clock, never execution order), a chaos run is exactly reproducible: the
same plan injects the same faults into the same units on every machine,
which is what lets the crash-matrix tests and
``benchmarks/bench_fault_tolerance.py`` pin a chaos run's persisted
output byte-identical to a fault-free run.

Fault kinds
-----------

* ``crash`` — the worker process dies mid-unit (``os._exit``), breaking
  the pool; exercises :class:`BrokenProcessPool` resurrection.  With no
  pool to kill (``n_jobs=1``), the crash is simulated as a raised
  :class:`InjectedCrash` — the in-process analogue of "this attempt
  produced nothing".
* ``hang`` — the unit sleeps ``hang_seconds``; exercises per-unit
  deadlines (the supervisor kills and rebuilds the pool, since a
  ``ProcessPoolExecutor`` future cannot be cancelled once running).
  In-process it raises :class:`InjectedHang` immediately — the main
  process cannot be preempted, so a simulated hang is an abandoned
  attempt.
* ``exception`` — the unit raises :class:`InjectedFault`; exercises the
  retry/backoff path.
* ``torn write`` — the checkpoint append for a completed unit is
  preceded by a partial, unterminated JSON fragment, simulating a
  crash mid-append by a previous process; exercises the ledger's
  torn-tail healing.

Faults only fire while ``attempt < faulty_attempts`` (default 1), so
any supervisor with ``max_retries >= faulty_attempts`` is *guaranteed*
to retry its way to completion — the property the bit-identity gates
rely on.  ``poison`` keys are the exception: they fail every attempt,
driving the degradation/quarantine paths.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from .runner import derive_seed

#: fault kind identifiers (also the ``decide`` return values)
CRASH = "crash"
HANG = "hang"
EXCEPTION = "exception"


class InjectedFault(RuntimeError):
    """A deliberate failure raised by the chaos harness."""


class InjectedCrash(InjectedFault):
    """In-process surrogate for a worker process dying mid-unit."""


class InjectedHang(InjectedFault):
    """In-process surrogate for a hung, deadline-abandoned unit."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults keyed by structural identity.

    Rates are independent per (kind, key, attempt): one uniform draw
    seeded by ``derive_seed(seed, "chaos", kind, *key, attempt)`` is
    compared against the cumulative crash/hang/exception thresholds, so
    a unit suffers at most one fault kind per attempt and the schedule
    is identical across hosts, pool rebuilds, and resumed runs.

    ``poison`` entries are exact ``(kind, *key)`` tuples that raise on
    *every* attempt regardless of rates — the tool for forcing a unit
    through retries into degradation or quarantine.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    torn_write_rate: float = 0.0
    hang_seconds: float = 30.0
    faulty_attempts: int = 1
    poison: tuple[tuple, ...] = ()

    def decide(self, kind: str, key: tuple, attempt: int) -> str | None:
        """Which fault (if any) fires for this unit execution."""
        if self.poison and (kind, *key) in {tuple(p) for p in self.poison}:
            return EXCEPTION
        if attempt >= self.faulty_attempts:
            return None
        draw = random.Random(
            derive_seed(self.seed, "chaos", kind, *key, attempt)
        ).random()
        if draw < self.crash_rate:
            return CRASH
        if draw < self.crash_rate + self.hang_rate:
            return HANG
        if draw < self.crash_rate + self.hang_rate + self.exception_rate:
            return EXCEPTION
        return None

    def decide_torn_write(self, key: tuple) -> bool:
        """Whether the ledger append recording ``key`` is torn first."""
        if self.torn_write_rate <= 0.0:
            return False
        draw = random.Random(derive_seed(self.seed, "torn", *key)).random()
        return draw < self.torn_write_rate


# The active plan is process-global: workers receive it through the pool
# initializer, the parent installs it for the duration of a supervised
# study (in-process units and ledger appends both run in the parent).
_ACTIVE_PLAN: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active fault plan."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def clear_plan() -> None:
    """Deactivate chaos injection in this process."""
    install_plan(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE_PLAN


def maybe_inject(kind: str, key: tuple, attempt: int, in_process: bool) -> None:
    """Fire the scheduled fault (if any) for one unit execution.

    Called at the top of every supervised unit, before the task body.
    ``in_process`` selects the surrogate behaviour for crash/hang when
    there is no worker process to kill or abandon.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    fault = plan.decide(kind, key, attempt)
    if fault is None:
        return
    context = f"{kind} unit {tuple(key)!r} (attempt {attempt})"
    if fault == CRASH:
        if not in_process:
            os._exit(86)
        raise InjectedCrash(f"injected crash in {context}")
    if fault == HANG:
        if not in_process:
            # Sleep, then run normally: if the supervisor has a deadline
            # it will have killed this worker long before the sleep
            # ends; without one the unit is merely late, never wrong.
            time.sleep(plan.hang_seconds)
            return
        raise InjectedHang(f"injected hang in {context}")
    raise InjectedFault(f"injected exception in {context}")


def torn_write_fragment(key: tuple) -> str | None:
    """A partial ledger line to prepend before the append for ``key``.

    Returns ``None`` when no torn write is scheduled.  The fragment has
    no trailing newline — exactly what a crash mid-``write`` leaves
    behind — so the ledger's torn-tail healing must drop it for the
    subsequent append to land cleanly.
    """
    plan = _ACTIVE_PLAN
    if plan is None or not plan.decide_torn_write(key):
        return None
    return '{"task": ["torn-write-fragment", "lost'
