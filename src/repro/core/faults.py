"""Deterministic chaos injection for the execution supervisor.

The supervisor (:mod:`repro.core.supervisor`) is only trustworthy if its
recovery paths are exercised on purpose, repeatably.  This module is the
fault side of that bargain: a :class:`FaultPlan` decides — purely from a
unit's structural key, its attempt number, and the plan's seed — whether
a given execution should crash the worker process, hang, raise, or tear
the checkpoint append that records its result.  Because the decision is
a function of ``derive_seed`` over structural identity (never wall
clock, never execution order), a chaos run is exactly reproducible: the
same plan injects the same faults into the same units on every machine,
which is what lets the crash-matrix tests and
``benchmarks/bench_fault_tolerance.py`` pin a chaos run's persisted
output byte-identical to a fault-free run.

Fault kinds
-----------

* ``crash`` — the worker process dies mid-unit (``os._exit``), breaking
  the pool; exercises :class:`BrokenProcessPool` resurrection.  With no
  pool to kill (``n_jobs=1``), the crash is simulated as a raised
  :class:`InjectedCrash` — the in-process analogue of "this attempt
  produced nothing".
* ``hang`` — the unit sleeps ``hang_seconds``; exercises per-unit
  deadlines (the supervisor kills and rebuilds the pool, since a
  ``ProcessPoolExecutor`` future cannot be cancelled once running).
  In-process it raises :class:`InjectedHang` immediately — the main
  process cannot be preempted, so a simulated hang is an abandoned
  attempt.
* ``exception`` — the unit raises :class:`InjectedFault`; exercises the
  retry/backoff path.
* ``torn write`` — the checkpoint append for a completed unit is
  preceded by a partial, unterminated JSON fragment, simulating a
  crash mid-append by a previous process; exercises the ledger's
  torn-tail healing.

Faults only fire while ``attempt < faulty_attempts`` (default 1), so
any supervisor with ``max_retries >= faulty_attempts`` is *guaranteed*
to retry its way to completion — the property the bit-identity gates
rely on.  ``poison`` keys are the exception: they fail every attempt,
driving the degradation/quarantine paths.

Disk-fault family (ISSUE 9)
---------------------------

The storage-integrity layer gets the same treatment in two halves:

* **Static corruption appliers** — :func:`corrupt_store` deterministically
  damages a columnar store on disk (``torn_column`` truncates a column
  payload, ``bit_flip`` XORs one payload byte at a seed-derived offset,
  ``manifest_corrupt`` truncates ``manifest.json`` mid-JSON).  Tests
  apply these between spill and study to drive the
  :class:`~repro.table.store.StoreCorruptionError` → recovery-ladder
  path.
* **Injected I/O errors** — ``enospc_rate`` / ``eio_rate`` schedule
  ``OSError(ENOSPC)`` on store writes and ``OSError(EIO)`` on
  verification reads through the store's I/O-fault hook, decided by the
  same single-uniform-draw discipline (seeded
  ``derive_seed(seed, "chaos-io", op, key, attempt)``, where the
  attempt is a per-process per-``(op, key)`` call counter).  I/O faults
  fire only while ``attempt < io_faulty_attempts``, mirroring the
  retryable-by-construction contract above.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

from .runner import derive_seed

#: fault kind identifiers (also the ``decide`` return values)
CRASH = "crash"
HANG = "hang"
EXCEPTION = "exception"

#: disk-fault identifiers (``corrupt_store`` kinds / ``decide_io`` returns)
TORN_COLUMN = "torn_column"
BIT_FLIP = "bit_flip"
MANIFEST_CORRUPT = "manifest_corrupt"
ENOSPC = "enospc"
EIO = "eio"

#: the static corruption kinds ``corrupt_store`` understands
DISK_FAULTS = (TORN_COLUMN, BIT_FLIP, MANIFEST_CORRUPT)


class InjectedFault(RuntimeError):
    """A deliberate failure raised by the chaos harness."""


class InjectedCrash(InjectedFault):
    """In-process surrogate for a worker process dying mid-unit."""


class InjectedHang(InjectedFault):
    """In-process surrogate for a hung, deadline-abandoned unit."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults keyed by structural identity.

    Rates are independent per (kind, key, attempt): one uniform draw
    seeded by ``derive_seed(seed, "chaos", kind, *key, attempt)`` is
    compared against the cumulative crash/hang/exception thresholds, so
    a unit suffers at most one fault kind per attempt and the schedule
    is identical across hosts, pool rebuilds, and resumed runs.

    ``poison`` entries are exact ``(kind, *key)`` tuples that raise on
    *every* attempt regardless of rates — the tool for forcing a unit
    through retries into degradation or quarantine.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    torn_write_rate: float = 0.0
    hang_seconds: float = 30.0
    faulty_attempts: int = 1
    poison: tuple[tuple, ...] = ()
    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    io_faulty_attempts: int = 1

    def decide(self, kind: str, key: tuple, attempt: int) -> str | None:
        """Which fault (if any) fires for this unit execution."""
        if self.poison and (kind, *key) in {tuple(p) for p in self.poison}:
            return EXCEPTION
        if attempt >= self.faulty_attempts:
            return None
        draw = random.Random(
            derive_seed(self.seed, "chaos", kind, *key, attempt)
        ).random()
        if draw < self.crash_rate:
            return CRASH
        if draw < self.crash_rate + self.hang_rate:
            return HANG
        if draw < self.crash_rate + self.hang_rate + self.exception_rate:
            return EXCEPTION
        return None

    def decide_torn_write(self, key: tuple) -> bool:
        """Whether the ledger append recording ``key`` is torn first."""
        if self.torn_write_rate <= 0.0:
            return False
        draw = random.Random(derive_seed(self.seed, "torn", *key)).random()
        return draw < self.torn_write_rate

    def decide_io(self, op: str, key: str, attempt: int) -> str | None:
        """Which injected I/O error (if any) fires for this store access.

        ``op`` is ``"write"`` (store writes raise ``ENOSPC``) or
        ``"read"`` (verification reads raise ``EIO``); ``key`` is the
        store's stable identity and ``attempt`` a per-process access
        counter, so retries beyond ``io_faulty_attempts`` always pass.
        """
        rate = self.enospc_rate if op == "write" else self.eio_rate
        if rate <= 0.0 or attempt >= self.io_faulty_attempts:
            return None
        draw = random.Random(
            derive_seed(self.seed, "chaos-io", op, key, attempt)
        ).random()
        if draw < rate:
            return ENOSPC if op == "write" else EIO
        return None

    @property
    def wants_io_hook(self) -> bool:
        return self.enospc_rate > 0.0 or self.eio_rate > 0.0


# The active plan is process-global: workers receive it through the pool
# initializer, the parent installs it for the duration of a supervised
# study (in-process units and ledger appends both run in the parent).
_ACTIVE_PLAN: FaultPlan | None = None

#: (op, store key) -> how many times this process has attempted that
#: access; the attempt number fed to ``decide_io``
_IO_ATTEMPTS: dict[tuple[str, str], int] = {}


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` as this process's active fault plan.

    Plans with I/O-fault rates also hook the columnar store's
    read/write paths (and a plan without them unhooks, so chaos never
    leaks past the study that asked for it).
    """
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    _IO_ATTEMPTS.clear()
    from ..table.store import set_io_fault_hook

    if plan is not None and plan.wants_io_hook:
        set_io_fault_hook(maybe_inject_io)
    else:
        set_io_fault_hook(None)


def clear_plan() -> None:
    """Deactivate chaos injection in this process."""
    install_plan(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE_PLAN


def maybe_inject(kind: str, key: tuple, attempt: int, in_process: bool) -> None:
    """Fire the scheduled fault (if any) for one unit execution.

    Called at the top of every supervised unit, before the task body.
    ``in_process`` selects the surrogate behaviour for crash/hang when
    there is no worker process to kill or abandon.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    fault = plan.decide(kind, key, attempt)
    if fault is None:
        return
    context = f"{kind} unit {tuple(key)!r} (attempt {attempt})"
    if fault == CRASH:
        if not in_process:
            os._exit(86)
        raise InjectedCrash(f"injected crash in {context}")
    if fault == HANG:
        if not in_process:
            # Sleep, then run normally: if the supervisor has a deadline
            # it will have killed this worker long before the sleep
            # ends; without one the unit is merely late, never wrong.
            time.sleep(plan.hang_seconds)
            return
        raise InjectedHang(f"injected hang in {context}")
    raise InjectedFault(f"injected exception in {context}")


def maybe_inject_io(op: str, key: str) -> None:
    """Fire the scheduled I/O error (if any) for one store access.

    Installed as the store's I/O-fault hook by :func:`install_plan`;
    the store calls it once per chunk write / finalize (``op="write"``)
    and once per digest verification (``op="read"``).  Raises plain
    ``OSError`` — exactly what a failing disk raises — so the recovery
    ladder is exercised on the real exception type.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    counter_key = (op, key)
    attempt = _IO_ATTEMPTS.get(counter_key, 0)
    _IO_ATTEMPTS[counter_key] = attempt + 1
    fault = plan.decide_io(op, key, attempt)
    if fault is None:
        return
    if fault == ENOSPC:
        raise OSError(
            errno.ENOSPC,
            f"injected ENOSPC writing store {key} (attempt {attempt})",
        )
    raise OSError(
        errno.EIO, f"injected EIO reading store {key} (attempt {attempt})"
    )


def corrupt_store(
    path: str | Path,
    fault: str,
    *,
    column_file: str | None = None,
    seed: int = 0,
) -> Path:
    """Deterministically damage a columnar store on disk; returns the file hit.

    ``torn_column`` truncates a column file to half its payload (the
    short-write a crashed spill leaves behind); ``bit_flip`` XORs one
    payload byte at an offset derived from ``seed`` (silent media
    corruption — only a content digest can see it); ``manifest_corrupt``
    truncates ``manifest.json`` mid-JSON (a torn manifest replace).
    ``column_file`` defaults to the first column file in name order.
    """
    from ..table.store import _HEADER_SIZE, MANIFEST_NAME

    path = Path(path)
    if fault == MANIFEST_CORRUPT:
        manifest = path / MANIFEST_NAME
        data = manifest.read_bytes()
        manifest.write_bytes(data[: max(1, len(data) // 2)])
        return manifest
    if column_file is None:
        candidates = sorted(p.name for p in path.glob("*.npy"))
        if not candidates:
            raise ValueError(f"no column files to corrupt in {path}")
        column_file = candidates[0]
    target = path / column_file
    data = target.read_bytes()
    payload = len(data) - _HEADER_SIZE
    if payload <= 0:
        raise ValueError(f"column file {target} has no payload to corrupt")
    if fault == TORN_COLUMN:
        target.write_bytes(data[: _HEADER_SIZE + payload // 2])
    elif fault == BIT_FLIP:
        offset = _HEADER_SIZE + derive_seed(seed, "bit-flip", column_file) % payload
        flipped = bytearray(data)
        flipped[offset] ^= 0x40
        target.write_bytes(bytes(flipped))
    else:
        raise ValueError(f"unknown disk fault {fault!r}")
    return target


def torn_write_fragment(key: tuple) -> str | None:
    """A partial ledger line to prepend before the append for ``key``.

    Returns ``None`` when no torn write is scheduled.  The fragment has
    no trailing newline — exactly what a crash mid-``write`` leaves
    behind — so the ledger's torn-tail healing must drop it for the
    subsequent append to land cleanly.
    """
    plan = _ACTIVE_PLAN
    if plan is None or not plan.decide_torn_write(key):
        return None
    return '{"task": ["torn-write-fragment", "lost'
