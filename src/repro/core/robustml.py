"""Robust-ML vs data-cleaning study (paper §VII-B, Table 18).

Two comparisons:

* **missing values vs NaCL** — a logistic regression robust to missing
  features (expected predictions, no cleaning) against (a) plain LR plus
  the best cleaning algorithm and (b) the best model plus the best
  cleaning algorithm;
* **other error types vs MLP** — an optuna-style-tuned multi-layer
  perceptron trained on the dirty data against the best model plus the
  best cleaning algorithm.

Flag **P** means data cleaning beat the robust-ML approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cleaning.base import MISSING_VALUES, CleaningMethod
from ..cleaning.registry import methods_for
from ..datasets.base import Dataset
from ..ml.mlp import MLPClassifier
from ..ml.model_selection import sample_params, score_predictions
from ..ml.nacl import NaCLClassifier
from ..stats.flags import Flag, flags_with_fdr
from ..stats.ttest import PairedTTestResult, paired_t_test
from ..table import FeatureEncoder, Table, train_test_split
from .runner import StudyConfig, derive_seed
from .schema import MetricPair
from .selection import EvaluationContext

#: the MLP dimensions the paper tunes with optuna (footnote 4)
MLP_SEARCH_SPACE = {
    "hidden_size": [16, 32, 64],
    "learning_rate": ("loguniform", 1e-3, 0.05),
    "momentum": ("uniform", 0.5, 0.95),
    "optimizer": ["sgd", "adam"],
}


@dataclass(frozen=True)
class RobustMLComparison:
    """One Table-18 row."""

    dataset: str
    error_type: str
    cleaning_arm: str  # e.g. "LR + best cleaning" / "best model + best cleaning"
    robust_arm: str  # "NaCL" / "MLP"
    flag: Flag
    test: PairedTTestResult
    pairs: tuple[MetricPair, ...]


def _robust_missing_score(
    context: EvaluationContext,
    raw_train: Table,
    raw_test: Table,
    split: int,
) -> float:
    """NaCL trained on the NaN-bearing data, evaluated on the dirty test."""
    encoder = FeatureEncoder(numeric_missing="nan").fit(raw_train.features_table())
    x_train = encoder.transform(raw_train.features_table())
    y_train = context.labeler.transform(raw_train.labels)
    model = NaCLClassifier().fit(x_train, y_train)
    x_test = encoder.transform(raw_test.features_table())
    y_test = context.labeler.transform(raw_test.labels)
    return score_predictions(
        y_test, model.predict(x_test), context.metric, context.positive
    )


def _robust_mlp_score(
    context: EvaluationContext,
    raw_train: Table,
    clean_test: Table,
    split: int,
    n_trials: int,
) -> float:
    """Tuned MLP trained on dirty data, evaluated on the cleaned test."""
    encoder = FeatureEncoder().fit(raw_train.features_table())
    x_train = encoder.transform(raw_train.features_table())
    y_train = context.labeler.transform(raw_train.labels)
    rng = np.random.default_rng(
        derive_seed(context.config.seed, context.dataset.name, "mlp", split)
    )
    # optuna-style tuning: random configurations scored on a holdout
    n = len(y_train)
    holdout = rng.permutation(n)
    cut = max(1, int(0.75 * n))
    fit_rows, val_rows = holdout[:cut], holdout[cut:]
    best_model, best_val = None, -np.inf
    for trial in range(max(1, n_trials)):
        params = sample_params(MLP_SEARCH_SPACE, rng)
        candidate = MLPClassifier(
            epochs=100, random_state=int(rng.integers(0, 2**31 - 1)), **params
        )
        candidate.fit(x_train[fit_rows], y_train[fit_rows])
        if len(val_rows) > 0:
            val = score_predictions(
                y_train[val_rows],
                candidate.predict(x_train[val_rows]),
                context.metric,
                context.positive,
            )
        else:
            val = 0.0
        if val > best_val:
            best_val, best_model = val, candidate

    x_test = encoder.transform(clean_test.features_table())
    y_test = context.labeler.transform(clean_test.labels)
    return score_predictions(
        y_test, best_model.predict(x_test), context.metric, context.positive
    )


def run_robustml_study(
    dataset: Dataset,
    error_type: str,
    config: StudyConfig,
    methods: list[CleaningMethod] | None = None,
    mlp_trials: int = 3,
) -> list[RobustMLComparison]:
    """Table 18 rows for one dataset and error type.

    Missing values yield two rows (LR-only and best-model cleaning arms
    vs NaCL); other error types yield one row (best model + cleaning vs
    MLP).
    """
    context = EvaluationContext(dataset, config)
    if methods is None:
        methods = methods_for(
            error_type,
            include_advanced=config.include_advanced_cleaning,
            random_state=config.seed,
        )

    arms: list[tuple[str, str, tuple[str, ...] | None]] = []
    if error_type == MISSING_VALUES:
        arms.append(("LR + best cleaning", "NaCL", ("logistic_regression",)))
        arms.append(("best model + best cleaning", "NaCL", None))
    else:
        arms.append(("best model + best cleaning", "MLP", None))

    pairs_by_arm: dict[str, list[MetricPair]] = {arm: [] for arm, _, _ in arms}
    for split in range(config.n_splits):
        split_seed = derive_seed(config.seed, dataset.name, "robust", split)
        raw_train, raw_test = train_test_split(
            dataset.dirty, test_ratio=config.test_ratio, seed=split_seed
        )
        for arm, robust, model_pool in arms:
            cleaned = context.best_cleaned(
                raw_train,
                raw_test,
                methods,
                split,
                models=model_pool,
                tag=f"robust:{arm}",
            )
            if robust == "NaCL":
                robust_score = _robust_missing_score(
                    context, raw_train, raw_test, split
                )
            else:
                robust_score = _robust_mlp_score(
                    context, raw_train, cleaned.clean_test, split, mlp_trials
                )
            pairs_by_arm[arm].append(
                MetricPair(before=robust_score, after=cleaned.test_metric)
            )

    tests = [
        paired_t_test(
            [pair.before for pair in pairs_by_arm[arm]],
            [pair.after for pair in pairs_by_arm[arm]],
        )
        for arm, _, _ in arms
    ]
    flags = flags_with_fdr(tests, alpha=config.alpha, procedure=config.fdr_procedure)
    return [
        RobustMLComparison(
            dataset=dataset.name,
            error_type=error_type,
            cleaning_arm=arm,
            robust_arm=robust,
            flag=flag,
            test=test,
            pairs=tuple(pairs_by_arm[arm]),
        )
        for (arm, robust, _), test, flag in zip(arms, tests, flags)
    ]
