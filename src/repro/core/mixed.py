"""Mixed-error cleaning study (paper §VII-A, Table 17).

For datasets carrying multiple error types, compare the best model
obtained by cleaning *all* error types (cleaning space = Cartesian
product of per-type methods, composed in a fixed order) against the best
model obtained by cleaning a *single* error type — both with R3-style
model and cleaning-method selection, over the usual splits and t-tests.
Flag **P** means mixed cleaning beat single-type cleaning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..cleaning.base import CleaningMethod
from ..cleaning.composite import CompositeCleaning
from ..cleaning.registry import methods_for
from ..datasets.base import Dataset
from ..stats.flags import Flag, flags_with_fdr
from ..stats.ttest import PairedTTestResult, paired_t_test
from ..table import train_test_split
from .runner import StudyConfig, derive_seed
from .schema import MetricPair
from .selection import EvaluationContext


@dataclass(frozen=True)
class MixedComparison:
    """One Table-17 row: mixed vs one single error type on one dataset."""

    dataset: str
    mixed_types: tuple[str, ...]
    single_type: str
    flag: Flag
    test: PairedTTestResult
    pairs: tuple[MetricPair, ...]


def method_space(
    dataset: Dataset,
    config: StudyConfig,
    methods_by_type: dict[str, list[CleaningMethod]] | None = None,
) -> dict[str, list[CleaningMethod]]:
    """Cleaning methods per error type the dataset carries.

    ``methods_by_type`` overrides the full registry space — benchmarks
    pass small subsets because the Cartesian product grows fast.
    """
    space: dict[str, list[CleaningMethod]] = {}
    for error_type in dataset.error_types:
        if methods_by_type and error_type in methods_by_type:
            space[error_type] = methods_by_type[error_type]
        else:
            space[error_type] = methods_for(
                error_type,
                include_advanced=config.include_advanced_cleaning,
                random_state=config.seed,
            )
    return space


def run_mixed_study(
    dataset: Dataset,
    config: StudyConfig,
    methods_by_type: dict[str, list[CleaningMethod]] | None = None,
) -> list[MixedComparison]:
    """Table 17 for one multi-error dataset: one comparison per type.

    Note: like the paper (footnote 3), mixed combinations never include
    mislabels, because no dataset carries coexisting real mislabels and
    other errors.
    """
    space = method_space(dataset, config, methods_by_type)
    if len(space) < 2:
        raise ValueError(f"{dataset.name} does not carry multiple error types")
    context = EvaluationContext(dataset, config)

    combos = [
        CompositeCleaning(list(combo))
        for combo in itertools.product(*space.values())
    ]
    pairs_by_single: dict[str, list[MetricPair]] = {t: [] for t in space}

    for split in range(config.n_splits):
        split_seed = derive_seed(config.seed, dataset.name, "mixed", split)
        raw_train, raw_test = train_test_split(
            dataset.dirty, test_ratio=config.test_ratio, seed=split_seed
        )
        mixed_best = context.best_cleaned(
            raw_train, raw_test, combos, split, tag="mixed"
        )
        for error_type, methods in space.items():
            single_best = context.best_cleaned(
                raw_train, raw_test, methods, split, tag=f"single:{error_type}"
            )
            pairs_by_single[error_type].append(
                MetricPair(
                    before=single_best.test_metric,
                    after=mixed_best.test_metric,
                )
            )

    tests = [
        paired_t_test(
            [pair.before for pair in pairs_by_single[t]],
            [pair.after for pair in pairs_by_single[t]],
        )
        for t in space
    ]
    flags = flags_with_fdr(tests, alpha=config.alpha, procedure=config.fdr_procedure)
    return [
        MixedComparison(
            dataset=dataset.name,
            mixed_types=tuple(space),
            single_type=error_type,
            flag=flag,
            test=test,
            pairs=tuple(pairs_by_single[error_type]),
        )
        for error_type, test, flag in zip(space, tests, flags)
    ]
