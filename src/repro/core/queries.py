"""The paper's SQL query templates Q1-Q5 (§V-A).

Every query fixes an error type, groups rows of a relation by the flag
attribute — and, beyond Q1, by one extra attribute:

* **Q1** — overall flag distribution;
* **Q2** — grouped by scenario;
* **Q3** — grouped by ML model (R1 only — R2/R3 drop the attribute);
* **Q4.1 / Q4.2** — grouped by detection / repair method;
* **Q5** — grouped by dataset.

Results come back as ``{group: {"P": count, "S": count, "N": count}}``
ordered dictionaries, plus helpers to render them the way the paper's
tables do (percentage with absolute count in parentheses).
"""

from __future__ import annotations

from collections import OrderedDict

from .relations import Relation


def q1(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Overall flag distribution for one error type."""
    return relation.distribution(error_type=error_type)


def q2(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Flag distribution per scenario (BD vs CD)."""
    return relation.distribution(group_by="scenario", error_type=error_type)


def q3(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Flag distribution per ML model (meaningful on R1 only)."""
    if relation.name != "R1":
        raise ValueError("Q3 requires R1 — other relations drop the model")
    return relation.distribution(group_by="ml_model", error_type=error_type)


def q4_detection(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Flag distribution per detection method (Q4.1)."""
    if relation.name == "R3":
        raise ValueError("Q4 requires R1 or R2 — R3 drops the cleaning method")
    return relation.distribution(group_by="detection", error_type=error_type)


def q4_repair(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Flag distribution per repair method (Q4.2)."""
    if relation.name == "R3":
        raise ValueError("Q4 requires R1 or R2 — R3 drops the cleaning method")
    return relation.distribution(group_by="repair", error_type=error_type)


def q5(relation: Relation, error_type: str) -> dict[str, dict[str, int]]:
    """Flag distribution per dataset."""
    return relation.distribution(group_by="dataset", error_type=error_type)


def format_distribution(counts: dict[str, int]) -> str:
    """One row in the paper's style: ``49% (143)  27% (80)  24% (71)``."""
    total = sum(counts.values())
    if total == 0:
        return "-"
    cells = []
    for flag in ("P", "S", "N"):
        count = counts.get(flag, 0)
        cells.append(f"{round(100 * count / total)}% ({count})")
    return "  ".join(cells)


def render_query(
    result: dict[str, dict[str, int]], title: str, group_header: str = ""
) -> str:
    """Render a Q1-Q5 result as a fixed-width text table."""
    lines = [title]
    width = max([len(str(group)) for group in result] + [len(group_header), 4])
    header = f"{group_header:<{width}}  {'P':>12} {'S':>12} {'N':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for group, counts in result.items():
        total = sum(counts.values())
        cells = []
        for flag in ("P", "S", "N"):
            count = counts.get(flag, 0)
            share = round(100 * count / total) if total else 0
            cells.append(f"{share:>3}% ({count:>4})")
        lines.append(f"{group:<{width}}  " + " ".join(cells))
    return "\n".join(lines)


def all_queries(
    relation: Relation, error_type: str
) -> "OrderedDict[str, dict[str, dict[str, int]]]":
    """Every applicable query template for one relation and error type."""
    out: OrderedDict[str, dict] = OrderedDict()
    out["Q1"] = q1(relation, error_type)
    out["Q2"] = q2(relation, error_type)
    if relation.name == "R1":
        out["Q3"] = q3(relation, error_type)
    if relation.name in ("R1", "R2"):
        out["Q4.1"] = q4_detection(relation, error_type)
        out["Q4.2"] = q4_repair(relation, error_type)
    out["Q5"] = q5(relation, error_type)
    return out
