"""Train/test splitting and cross-validation folds.

CleanML's randomness-control protocol (paper §IV-B) repeats every
experiment over 20 random 70/30 train/test splits; hyper-parameter tuning
uses 5-fold cross validation on the training split.  Both utilities live
here so the split logic is identical everywhere.
"""

from __future__ import annotations

import numpy as np

from .table import Table


def split_indices(
    n_rows: int, test_ratio: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random (train, test) index arrays with ``test_ratio`` in the test set.

    Guarantees at least one row on each side for any ``0 < test_ratio < 1``
    and ``n_rows >= 2``.
    """
    if not 0.0 < test_ratio < 1.0:
        raise ValueError("test_ratio must be in (0, 1)")
    if n_rows < 2:
        raise ValueError("need at least two rows to split")
    permutation = rng.permutation(n_rows)
    n_test = int(round(n_rows * test_ratio))
    n_test = min(max(n_test, 1), n_rows - 1)
    return np.sort(permutation[n_test:]), np.sort(permutation[:n_test])


def train_test_split(
    table: Table, test_ratio: float = 0.3, seed: int | None = None
) -> tuple[Table, Table]:
    """Split ``table`` into (train, test) with a 70/30 default ratio."""
    rng = np.random.default_rng(seed)
    train_idx, test_idx = split_indices(table.n_rows, test_ratio, rng)
    return table.take(train_idx), table.take(test_idx)


def kfold_indices(
    n_rows: int, n_folds: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """K-fold (train, validation) index pairs over a shuffled permutation."""
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    if n_rows < n_folds:
        raise ValueError("more folds than rows")
    permutation = rng.permutation(n_rows)
    folds = np.array_split(permutation, n_folds)
    pairs = []
    for i, fold in enumerate(folds):
        val_idx = np.sort(fold)
        train_idx = np.sort(
            np.concatenate([f for j, f in enumerate(folds) if j != i])
        )
        pairs.append((train_idx, val_idx))
    return pairs


def stratified_split_indices(
    labels: np.ndarray, test_ratio: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Class-stratified (train, test) indices.

    Keeps each class's proportion roughly constant across the two sides,
    used by dataset generators when a plain random split could starve a
    minority class.
    """
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    values = np.asarray(labels, dtype=object)
    for cls in _ordered_unique(values):
        cls_idx = np.nonzero(values == cls)[0]
        permuted = cls_idx[rng.permutation(len(cls_idx))]
        n_test = int(round(len(permuted) * test_ratio))
        if len(permuted) >= 2:
            n_test = min(max(n_test, 1), len(permuted) - 1)
        test_parts.append(permuted[:n_test])
        train_parts.append(permuted[n_test:])
    train = np.sort(np.concatenate(train_parts)) if train_parts else np.array([], int)
    test = np.sort(np.concatenate(test_parts)) if test_parts else np.array([], int)
    return train, test


def _ordered_unique(values: np.ndarray) -> list:
    seen: dict = {}
    for value in values.tolist():
        seen.setdefault(value, None)
    return list(seen)
