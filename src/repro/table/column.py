"""Column storage for the tabular substrate.

A :class:`Column` wraps a numpy array plus its :class:`ColumnType` and
provides missing-aware statistics (mean / median / mode / std / quantiles)
that the cleaning algorithms rely on.  All statistics ignore missing
entries, matching how CleanML computes repair statistics on dirty data.

Columnar buffer/view memory model (ISSUE 6)
-------------------------------------------
Storage is a contiguous **buffer** (``float64`` for NUMERIC, object-of-str
for CATEGORICAL) that is *immutable once shared*: the first view taken
over a buffer locks it read-only, so every consumer that wants to mutate
must copy first — which is the discipline the cleaning layer already
follows (``column.values.copy()``).

:meth:`Column.take` returns a **zero-copy view**: a column that shares
the parent's buffer and carries only an integer row-index array.  Views
compose — ``take(take(...))`` folds the two index arrays with integer
arithmetic and never touches the value buffer — and **materialize
lazily**: the first access to :attr:`values` gathers ``buffer[indices]``
once and caches the result, after which the column behaves exactly like
an eagerly-copied one.  Consumers that need a private mutable array use
:meth:`gather`, which never caches (and never aliases the shared
buffer), so hot paths like the feature encoder can slice straight from
the buffer without ever materializing the view.

The pre-view, copy-on-``take`` implementation survives as
:meth:`Column._take_reference` — the executable reference path that
:func:`table_views_disabled` switches back in, following the repo-wide
kernel pattern (reference kept in-tree, bit-equality pinned by tests).

Out-of-core buffers (ISSUE 8)
-----------------------------
A column's buffer no longer has to be resident.  Columns loaded from a
columnar store (:mod:`repro.table.store`) are **file-backed**: numeric
buffers are ``numpy`` memory-maps opened read-only straight off the
``.npy`` file, and categorical buffers are :class:`_LazyBuffer` cells
that decode an int32 code array through the store's value dictionary on
first touch.  Both plug into the view machinery unchanged — a view of a
mapped buffer carries an index array over the map, never a resident
copy — and both remember their ``(store, column)`` **source**, so
pickling a file-backed column ships the path and the worker re-opens
the memmap instead of receiving the buffer bytes.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager

import numpy as np

from .schema import ColumnType

#: process-wide switch for zero-copy table views; flip only through
#: :func:`table_views_disabled`
_VIEWS_ENABLED = True


def table_views_enabled() -> bool:
    """Whether ``take``/``mask`` produce zero-copy index views."""
    return _VIEWS_ENABLED


@contextmanager
def table_views_disabled():
    """Run on the copy-based reference table core for the block.

    ``Column.take`` (and everything built on it: ``Table.take``/``mask``/
    ``drop_rows``/``iter_chunks``, train/test splitting, fold slicing)
    falls back to the pre-view behavior of eagerly copying the selected
    rows into fresh arrays.  The view path must produce byte-identical
    persisted study output — the parity suite and the table-core
    benchmark hold it to that, the same contract every other kernel
    switch in this repo enforces.
    """
    global _VIEWS_ENABLED
    previous = _VIEWS_ENABLED
    _VIEWS_ENABLED = False
    try:
        yield
    finally:
        _VIEWS_ENABLED = previous


class _LazyBuffer:
    """A shared one-shot cell that loads a column buffer on first touch.

    The columnar store uses this for categorical columns: the loader
    decodes the on-disk int32 code array through the value dictionary,
    and every view taken before materialization shares the same cell,
    so the decode happens at most once per process.  The loaded array
    is locked read-only immediately — it plays the role of a shared
    base buffer from the moment it exists.
    """

    __slots__ = ("_loader", "_length", "_array")

    def __init__(self, loader, length: int) -> None:
        self._loader = loader
        self._length = int(length)
        self._array: np.ndarray | None = None

    def __len__(self) -> int:
        return self._length

    def get(self) -> np.ndarray:
        if self._array is None:
            array = self._loader()
            if len(array) != self._length:
                raise ValueError(
                    f"lazy buffer loader returned {len(array)} rows, "
                    f"expected {self._length}"
                )
            array.setflags(write=False)
            self._array = array
            self._loader = None
        return self._array


class Column:
    """A single typed column with missing-value support.

    NUMERIC data is a ``float64`` array (``NaN`` = missing); CATEGORICAL
    data is an object array of ``str`` (``None`` = missing).  Construction
    normalizes arbitrary python sequences into that representation.

    Internally a column is a ``(buffer, indices)`` pair: ``indices is
    None`` for a base column that owns its buffer outright, an integer
    array for a zero-copy view produced by :meth:`take`.  :attr:`values`
    always returns the materialized row-ordered array, gathering (and
    caching) lazily for views.

    File-backed columns additionally carry a ``_source`` —
    ``(store directory, column name)`` — and may defer their buffer to
    a shared :class:`_LazyBuffer` cell (``_buffer is None`` until the
    cell is touched).  Pickling a sourced column ships only the source
    and the view indices; the receiving process re-opens the store.
    """

    def __init__(self, values, ctype: ColumnType) -> None:
        self.ctype = ctype
        if ctype is ColumnType.NUMERIC:
            self._buffer = _as_numeric(values)
        else:
            self._buffer = _as_categorical(values)
        self._indices: np.ndarray | None = None
        self._lazy: _LazyBuffer | None = None
        self._source: tuple[str, str] | None = None

    @classmethod
    def from_buffer(
        cls,
        buffer: np.ndarray,
        ctype: ColumnType,
        *,
        source: tuple[str, str] | None = None,
    ) -> "Column":
        """Wrap an already-normalized buffer without copying or converting.

        The caller vouches that ``buffer`` matches the columnar
        representation contract (float64 / object-of-str).  ``source``
        marks the column file-backed: ``(store directory, column name)``
        provenance that pickling round-trips through instead of the
        buffer bytes.
        """
        column = cls.__new__(cls)
        column.ctype = ctype
        column._buffer = buffer
        column._indices = None
        column._lazy = None
        column._source = source
        return column

    @classmethod
    def from_lazy(
        cls,
        lazy: _LazyBuffer,
        ctype: ColumnType,
        *,
        source: tuple[str, str] | None = None,
    ) -> "Column":
        """A column whose buffer loads on first touch (see ``_LazyBuffer``)."""
        column = cls.__new__(cls)
        column.ctype = ctype
        column._buffer = None
        column._indices = None
        column._lazy = lazy
        column._source = source
        return column

    # -- basic protocol ----------------------------------------------------

    def _storage(self) -> np.ndarray:
        """The base buffer, loading the lazy cell if necessary."""
        if self._buffer is None:
            self._buffer = self._lazy.get()
        return self._buffer

    @property
    def values(self) -> np.ndarray:
        """The column's materialized values (lazy for views, then cached)."""
        if self._indices is not None:
            # materializing a view yields a private resident array; it is
            # no longer the stored column, so drop the provenance
            self._buffer = self._storage()[self._indices]
            self._indices = None
            self._lazy = None
            self._source = None
        elif self._buffer is None:
            self._buffer = self._lazy.get()
        return self._buffer

    @property
    def is_view(self) -> bool:
        """True while this column is an unmaterialized zero-copy view."""
        return self._indices is not None

    @property
    def is_file_backed(self) -> bool:
        """True when this column's buffer lives in a columnar store."""
        return self._source is not None

    @property
    def base_buffer(self) -> np.ndarray:
        """The underlying shared buffer, without materializing a view.

        For a base column this is simply its storage; for a view it is
        the parent's buffer — which is what the no-copy identity checks
        in the table-core benchmark assert on.
        """
        return self._storage()

    @property
    def view_indices(self) -> np.ndarray | None:
        """The view's row-index array (``None`` once materialized)."""
        return self._indices

    def __len__(self) -> int:
        if self._indices is not None:
            return len(self._indices)
        if self._buffer is not None:
            return len(self._buffer)
        return len(self._lazy)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.ctype is not other.ctype or len(self) != len(other):
            return False
        mine, theirs = self.missing_mask(), other.missing_mask()
        if not np.array_equal(mine, theirs):
            return False
        present = ~mine
        return bool(np.array_equal(self.values[present], other.values[present]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "view" if self.is_view else "base"
        return f"Column({self.ctype.value}, n={len(self)}, {state})"

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.NUMERIC

    def copy(self) -> "Column":
        clone = Column.__new__(Column)
        clone.ctype = self.ctype
        clone._buffer = self.gather()
        clone._indices = None
        clone._lazy = None
        clone._source = None
        return clone

    def gather(self) -> np.ndarray:
        """A fresh, writable, materialized array — never cached.

        For a view this is one ``buffer[indices]`` gather (the same
        bits :attr:`values` would cache); for a base column, a plain
        copy.  The result never aliases the shared buffer, so callers
        may mutate it freely — this is the encoder's fast path.  For a
        file-backed base column the copy is the read off disk into a
        resident array.
        """
        storage = self._storage()
        if self._indices is not None:
            return np.asarray(storage[self._indices])
        return np.array(storage)

    def take(self, indices) -> "Column":
        """New column containing the rows at ``indices`` (in order).

        With views enabled this is zero-copy: the result shares this
        column's buffer and only carries the (composed) index array.
        The buffer is locked read-only the moment it becomes shared, so
        an accidental in-place write through one alias cannot corrupt
        the others.  Views of memory-mapped buffers stay on the map —
        the index array is the only resident allocation.
        """
        if not _VIEWS_ENABLED:
            return self._take_reference(indices)
        indices = np.asarray(indices)
        if indices.dtype == bool:
            indices = np.nonzero(indices)[0]
        else:
            indices = indices.astype(np.intp, copy=False)
        if self._indices is not None:
            # view-of-view: fold to a single indirection over the base
            # buffer with index arithmetic — no value gather
            indices = self._indices[indices]
        if self._buffer is not None:
            self._buffer.setflags(write=False)
        view = Column.__new__(Column)
        view.ctype = self.ctype
        view._buffer = self._buffer
        view._indices = indices
        view._lazy = self._lazy
        view._source = self._source
        return view

    def _take_reference(self, indices) -> "Column":
        """The pre-view eager take — kept as the executable spec.

        Materializes the selected rows into a fresh array immediately;
        :func:`table_views_disabled` routes :meth:`take` through this,
        and the view path must match it value-for-value.
        """
        clone = Column.__new__(Column)
        clone.ctype = self.ctype
        clone._buffer = self.values[np.asarray(indices)]
        clone._indices = None
        clone._lazy = None
        clone._source = None
        return clone

    def aliases(self, other: "Column") -> bool:
        """True when the two columns *provably* hold identical values.

        Conservative identity check — same object, or same buffer with
        the same view state — that never compares elements.  Lets
        consumers (e.g. the default ``affected_rows``) skip O(n)
        comparisons for columns a transform passed through untouched.
        """
        if self is other:
            return True
        if self.ctype is not other.ctype:
            return False
        if self._lazy is not None or other._lazy is not None:
            # unmaterialized lazy buffers compare by cell identity; two
            # distinct cells may decode the same bits, but "False" is
            # always a safe answer for this check
            if self._lazy is not other._lazy:
                return False
        elif self._buffer is not other._buffer:
            return False
        if self._indices is None and other._indices is None:
            return True
        return self._indices is other._indices

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        if self._source is not None:
            # file-backed: ship provenance, not bytes — the receiving
            # process (e.g. a pool worker) re-opens the memmap locally.
            # base_rows is the base-buffer length, which lets the worker
            # defer a StoreCorruptionError found at attach time to first
            # materialization instead of dying in the pool initializer
            return {
                "ctype": self.ctype.value,
                "indices": self._indices,
                "source": self._source,
                "base_rows": (
                    len(self._buffer)
                    if self._buffer is not None
                    else len(self._lazy)
                ),
            }
        return {
            "ctype": self.ctype.value,
            "indices": self._indices,
            "buffer": self._storage(),
        }

    def __setstate__(self, state) -> None:
        self.ctype = ColumnType(state["ctype"])
        self._indices = state["indices"]
        self._lazy = None
        self._source = None
        if "source" in state:
            from .store import attach_source

            attach_source(self, state["source"], state.get("base_rows"))
        else:
            self._buffer = state["buffer"]

    # -- missing values ----------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean array, True where the entry is missing."""
        if self.is_numeric:
            return np.isnan(self.values)
        return np.array([v is None for v in self.values], dtype=bool)

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def present_values(self) -> np.ndarray:
        """Values with missing entries removed."""
        return self.values[~self.missing_mask()]

    # -- statistics (all missing-aware) -------------------------------------

    def mean(self) -> float:
        self._require_numeric("mean")
        present = self.present_values()
        return float(np.mean(present)) if len(present) else float("nan")

    def median(self) -> float:
        self._require_numeric("median")
        present = self.present_values()
        return float(np.median(present)) if len(present) else float("nan")

    def std(self) -> float:
        self._require_numeric("std")
        present = self.present_values()
        return float(np.std(present)) if len(present) else float("nan")

    def quantile(self, q: float) -> float:
        self._require_numeric("quantile")
        present = self.present_values()
        return float(np.quantile(present, q)) if len(present) else float("nan")

    def mode(self):
        """Most frequent present value (ties broken by first occurrence).

        Works for both numeric and categorical columns; returns ``None``
        (categorical) or ``NaN`` (numeric) when every entry is missing.
        """
        present = self.present_values()
        if len(present) == 0:
            return float("nan") if self.is_numeric else None
        counts = Counter(present.tolist())
        best_count = max(counts.values())
        for value in present.tolist():
            if counts[value] == best_count:
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def value_counts(self) -> dict:
        """Mapping of present value -> count, most frequent first."""
        counts = Counter(self.present_values().tolist())
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    def unique(self) -> list:
        """Distinct present values in first-occurrence order."""
        seen: dict = {}
        for value in self.present_values().tolist():
            seen.setdefault(value, None)
        return list(seen)

    def _require_numeric(self, op: str) -> None:
        if not self.is_numeric:
            raise TypeError(f"{op}() requires a numeric column")


def _as_numeric(values) -> np.ndarray:
    if isinstance(values, np.ndarray) and values.dtype == np.float64:
        return values.astype(np.float64, copy=True)
    out = np.empty(len(values), dtype=np.float64)
    for i, value in enumerate(values):
        if value is None or (isinstance(value, str) and value.strip() == ""):
            out[i] = np.nan
        else:
            out[i] = float(value)
    return out


def _as_categorical(values) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            out[i] = None
        elif isinstance(value, float) and np.isnan(value):
            out[i] = None
        elif isinstance(value, str) and value == "":
            out[i] = None
        else:
            out[i] = str(value)
    return out
