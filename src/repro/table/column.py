"""Column storage for the tabular substrate.

A :class:`Column` wraps a numpy array plus its :class:`ColumnType` and
provides missing-aware statistics (mean / median / mode / std / quantiles)
that the cleaning algorithms rely on.  All statistics ignore missing
entries, matching how CleanML computes repair statistics on dirty data.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .schema import ColumnType


class Column:
    """A single typed column with missing-value support.

    NUMERIC data is a ``float64`` array (``NaN`` = missing); CATEGORICAL
    data is an object array of ``str`` (``None`` = missing).  Construction
    normalizes arbitrary python sequences into that representation.
    """

    def __init__(self, values, ctype: ColumnType) -> None:
        self.ctype = ctype
        if ctype is ColumnType.NUMERIC:
            self.values = _as_numeric(values)
        else:
            self.values = _as_categorical(values)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.ctype is not other.ctype or len(self) != len(other):
            return False
        mine, theirs = self.missing_mask(), other.missing_mask()
        if not np.array_equal(mine, theirs):
            return False
        present = ~mine
        return bool(np.array_equal(self.values[present], other.values[present]))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.ctype.value}, n={len(self)})"

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.NUMERIC

    def copy(self) -> "Column":
        clone = Column.__new__(Column)
        clone.ctype = self.ctype
        clone.values = self.values.copy()
        return clone

    def take(self, indices) -> "Column":
        """New column containing the rows at ``indices`` (in order)."""
        clone = Column.__new__(Column)
        clone.ctype = self.ctype
        clone.values = self.values[np.asarray(indices)]
        return clone

    # -- missing values ----------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean array, True where the entry is missing."""
        if self.is_numeric:
            return np.isnan(self.values)
        return np.array([v is None for v in self.values], dtype=bool)

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def present_values(self) -> np.ndarray:
        """Values with missing entries removed."""
        return self.values[~self.missing_mask()]

    # -- statistics (all missing-aware) -------------------------------------

    def mean(self) -> float:
        self._require_numeric("mean")
        present = self.present_values()
        return float(np.mean(present)) if len(present) else float("nan")

    def median(self) -> float:
        self._require_numeric("median")
        present = self.present_values()
        return float(np.median(present)) if len(present) else float("nan")

    def std(self) -> float:
        self._require_numeric("std")
        present = self.present_values()
        return float(np.std(present)) if len(present) else float("nan")

    def quantile(self, q: float) -> float:
        self._require_numeric("quantile")
        present = self.present_values()
        return float(np.quantile(present, q)) if len(present) else float("nan")

    def mode(self):
        """Most frequent present value (ties broken by first occurrence).

        Works for both numeric and categorical columns; returns ``None``
        (categorical) or ``NaN`` (numeric) when every entry is missing.
        """
        present = self.present_values()
        if len(present) == 0:
            return float("nan") if self.is_numeric else None
        counts = Counter(present.tolist())
        best_count = max(counts.values())
        for value in present.tolist():
            if counts[value] == best_count:
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def value_counts(self) -> dict:
        """Mapping of present value -> count, most frequent first."""
        counts = Counter(self.present_values().tolist())
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0]))))

    def unique(self) -> list:
        """Distinct present values in first-occurrence order."""
        seen: dict = {}
        for value in self.present_values().tolist():
            seen.setdefault(value, None)
        return list(seen)

    def _require_numeric(self, op: str) -> None:
        if not self.is_numeric:
            raise TypeError(f"{op}() requires a numeric column")


def _as_numeric(values) -> np.ndarray:
    if isinstance(values, np.ndarray) and values.dtype == np.float64:
        return values.astype(np.float64, copy=True)
    out = np.empty(len(values), dtype=np.float64)
    for i, value in enumerate(values):
        if value is None or (isinstance(value, str) and value.strip() == ""):
            out[i] = np.nan
        else:
            out[i] = float(value)
    return out


def _as_categorical(values) -> np.ndarray:
    out = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        if value is None:
            out[i] = None
        elif isinstance(value, float) and np.isnan(value):
            out[i] = None
        elif isinstance(value, str) and value == "":
            out[i] = None
        else:
            out[i] = str(value)
    return out
