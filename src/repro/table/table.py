"""The :class:`Table` container — CleanML's unit of data.

A ``Table`` is an immutable-by-convention, column-oriented relation: a
:class:`~repro.table.schema.Schema` plus one :class:`Column` per spec.
Every cleaning operator consumes a table and produces a *new* table, so
dirty and cleaned versions can coexist during an experiment.

Row selection (``take`` / ``mask`` / ``drop_rows`` / ``iter_chunks``,
and everything built on them — train/test splitting, fold slicing,
``features_table``) is **zero-copy**: the result shares each column's
buffer and carries only an index array, materializing lazily on first
value access (see :mod:`repro.table.column` for the memory model).
Wrap a block in :func:`~repro.table.column.table_views_disabled` to run
on the eager copy-based reference path instead.
"""

from __future__ import annotations

import numpy as np

from .column import Column, table_views_disabled, table_views_enabled
from .schema import ColumnSpec, ColumnType, Schema


class Table:
    """Column-oriented table with mixed numeric / categorical columns."""

    def __init__(
        self,
        schema: Schema,
        columns: dict[str, Column],
        n_rows: int | None = None,
    ) -> None:
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise ValueError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        if lengths:
            observed = lengths.pop()
            if n_rows is not None and n_rows != observed:
                raise ValueError(
                    f"n_rows={n_rows} does not match column length {observed}"
                )
            n_rows = observed
        for spec in schema.columns:
            if columns[spec.name].ctype is not spec.ctype:
                raise ValueError(
                    f"column {spec.name!r} has type "
                    f"{columns[spec.name].ctype} but schema says {spec.ctype}"
                )
        self.schema = schema
        self._columns = columns
        # Row count survives dropping every column (e.g. a label-only table
        # reduced to features), which plain column inspection cannot tell.
        self._n_rows = 0 if n_rows is None else int(n_rows)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, schema: Schema, data: dict[str, list]) -> "Table":
        """Build a table from raw python lists keyed by column name."""
        columns = {
            spec.name: Column(data[spec.name], spec.ctype)
            for spec in schema.columns
        }
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows: list[dict]) -> "Table":
        """Build a table from a list of row dictionaries."""
        data: dict[str, list] = {name: [] for name in schema.names}
        for row in rows:
            for name in schema.names:
                data[name].append(row.get(name))
        return cls.from_dict(schema, data)

    # -- basic protocol ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def file_backed(self) -> bool:
        """True when every column's base buffer lives in a columnar store.

        File-backed tables pickle as store paths plus view indices —
        pool workers re-open the memmaps locally instead of receiving
        the buffers over the pipe (see :mod:`repro.table.store`).
        """
        return bool(self._columns) and all(
            column.is_file_backed for column in self._columns.values()
        )

    def __len__(self) -> int:
        return self.n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.schema != other.schema:
            return False
        return all(
            self._columns[name] == other._columns[name]
            for name in self.schema.names
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table(rows={self.n_rows}, columns={self.schema.names})"

    def column(self, name: str) -> Column:
        """The named column; raises ``KeyError`` if absent."""
        if name not in self._columns:
            raise KeyError(f"no column named {name!r}")
        return self._columns[name]

    def row(self, index: int) -> dict:
        """Row ``index`` as a ``{column: value}`` dict (missing -> None)."""
        out = {}
        for name in self.schema.names:
            value = self._columns[name].values[index]
            if isinstance(value, float) and np.isnan(value):
                value = None
            out[name] = value
        return out

    def rows(self) -> list[dict]:
        """All rows as dicts — convenient for tests and small tables."""
        return [self.row(i) for i in range(self.n_rows)]

    def copy(self) -> "Table":
        return Table(
            self.schema,
            {name: col.copy() for name, col in self._columns.items()},
            n_rows=self.n_rows,
        )

    # -- row selection ---------------------------------------------------------

    def take(self, indices) -> "Table":
        """New table with the rows at ``indices`` (order preserved).

        Zero-copy while views are enabled: every column of the result
        shares its parent's buffer and only the index array is new.
        """
        indices = np.asarray(indices, dtype=int)
        return Table(
            self.schema,
            {name: col.take(indices) for name, col in self._columns.items()},
            n_rows=len(indices),
        )

    def mask(self, keep: np.ndarray) -> "Table":
        """New table with rows where boolean ``keep`` is True."""
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != self.n_rows:
            raise ValueError("mask length does not match row count")
        return self.take(np.nonzero(keep)[0])

    def drop_rows(self, indices) -> "Table":
        """New table without the rows at ``indices``.

        Out-of-range and negative indices are ignored, matching the
        historical set-membership semantics (kept executable as
        :meth:`_drop_rows_reference`).
        """
        drop = np.array(sorted({int(i) for i in indices}), dtype=np.int64)
        keep = np.isin(np.arange(self.n_rows), drop, invert=True)
        return self.mask(keep)

    def _drop_rows_reference(self, indices) -> "Table":
        """Pre-vectorization ``drop_rows`` — parity oracle for tests."""
        drop = set(int(i) for i in indices)
        keep = np.array([i not in drop for i in range(self.n_rows)], dtype=bool)
        return self.mask(keep)

    def iter_chunks(self, chunk_rows: int):
        """Yield consecutive row blocks of at most ``chunk_rows`` rows.

        Each block is a zero-copy view table (buffer-sharing ``take``),
        so streaming pipelines — inject → split → clean → encode — can
        walk a large table without ever holding a second full copy.
        """
        if chunk_rows <= 0:
            raise ValueError("chunk_rows must be positive")
        for start in range(0, self.n_rows, chunk_rows):
            stop = min(start + chunk_rows, self.n_rows)
            yield self.take(np.arange(start, stop))

    def concat(self, other: "Table") -> "Table":
        """Vertical concatenation; schemas must match exactly."""
        if self.schema != other.schema:
            raise ValueError("cannot concat tables with different schemas")
        columns = {}
        for spec in self.schema.columns:
            merged = np.concatenate(
                [self._columns[spec.name].values, other._columns[spec.name].values]
            )
            columns[spec.name] = Column(merged, spec.ctype)
        # n_rows passed explicitly: with zero columns the dict above is
        # empty and the constructor could not recover the row count.
        return Table(self.schema, columns, n_rows=self.n_rows + other.n_rows)

    # -- column manipulation -----------------------------------------------------

    def with_column(self, name: str, column: Column) -> "Table":
        """New table with ``name`` replaced (type must match the schema)."""
        spec = self.schema.spec(name)
        if column.ctype is not spec.ctype:
            raise ValueError(
                f"column {name!r} must be {spec.ctype}, got {column.ctype}"
            )
        if len(column) != self.n_rows:
            raise ValueError("replacement column has wrong length")
        columns = dict(self._columns)
        columns[name] = column
        return Table(self.schema, columns)

    def with_values(self, name: str, values) -> "Table":
        """New table with the raw values of column ``name`` replaced."""
        return self.with_column(name, Column(values, self.schema.ctype(name)))

    def drop_columns(self, names: list[str] | tuple[str, ...]) -> "Table":
        """New table without the listed columns."""
        schema = self.schema.drop(list(names))
        columns = {n: c for n, c in self._columns.items() if n in schema.names}
        return Table(schema, columns, n_rows=self.n_rows)

    def add_column(self, spec: ColumnSpec, values) -> "Table":
        """New table with an extra column appended."""
        if spec.name in self.schema:
            raise ValueError(f"column {spec.name!r} already exists")
        schema = Schema(
            columns=self.schema.columns + (spec,),
            label=self.schema.label,
            keys=self.schema.keys,
            hidden=self.schema.hidden,
        )
        columns = dict(self._columns)
        columns[spec.name] = Column(values, spec.ctype)
        return Table(schema, columns)

    # -- label access ------------------------------------------------------------

    @property
    def labels(self) -> np.ndarray:
        """Raw label column values (schema must define a label)."""
        if self.schema.label is None:
            raise ValueError("table has no label column")
        return self.column(self.schema.label).values

    def features_table(self) -> "Table":
        """The table without its label column."""
        if self.schema.label is None:
            return self
        return self.drop_columns([self.schema.label])

    def replace_labels(self, values) -> "Table":
        """New table with the label column replaced by ``values``."""
        if self.schema.label is None:
            raise ValueError("table has no label column")
        return self.with_values(self.schema.label, values)

    # -- missing values ------------------------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """(n_rows, n_cols) boolean matrix of missing cells (schema order)."""
        masks = [self._columns[name].missing_mask() for name in self.schema.names]
        return np.column_stack(masks) if masks else np.zeros((0, 0), dtype=bool)

    def rows_with_missing(self) -> np.ndarray:
        """Indices of rows that contain at least one missing feature value."""
        feature_names = self.schema.feature_names
        if not feature_names:
            return np.array([], dtype=int)
        masks = [self._columns[name].missing_mask() for name in feature_names]
        any_missing = np.logical_or.reduce(masks)
        return np.nonzero(any_missing)[0]

    def n_missing_cells(self) -> int:
        return int(self.missing_mask().sum())
