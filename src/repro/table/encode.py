"""Feature and label encoding with strict fit-on-train semantics.

The paper is explicit that "all statistics necessary for data cleaning,
such as mean, are computed only on the training set" (§IV-A step 2).  The
same discipline applies to feature encoding: the :class:`FeatureEncoder`
learns standardization statistics and category vocabularies from the
training table only, and then transforms both splits.

Transforms are vectorized — one-hot blocks are filled by integer fancy
indexing over category codes instead of a per-row Python loop — and the
original per-row implementation is retained as
:meth:`FeatureEncoder._transform_reference`, the executable spec the
vectorized path must match bit-for-bit (``tests/test_split_kernel.py``
asserts the equality across every registry dataset).

The encoder is also view-aware: numeric blocks slice straight out of the
column's shared buffer with one :meth:`~repro.table.column.Column.gather`
(never materializing the view's cache), and categorical codes are
computed once per *base buffer* and re-sliced per view — so encoding k
fold-views of one table pays the Python-level value→code map exactly
once instead of k times.
"""

from __future__ import annotations

from itertools import repeat

import numpy as np

from .column import table_views_enabled
from .schema import ColumnType
from .table import Table

#: metrics hook, push-installed by :func:`repro.core.observability.install`
_metrics = None


class LabelEncoder:
    """Maps raw label values to contiguous integer class ids."""

    def __init__(self) -> None:
        self.classes_: list = []
        self._index: dict = {}

    def fit(self, labels) -> "LabelEncoder":
        self.classes_ = []
        self._index = {}
        for value in _to_list(labels):
            if value not in self._index:
                self._index[value] = len(self.classes_)
                self.classes_.append(value)
        if not self.classes_:
            raise ValueError("cannot fit a label encoder on no labels")
        return self

    @property
    def n_classes(self) -> int:
        return len(self.classes_)

    def transform(self, labels) -> np.ndarray:
        values = _to_list(labels)
        try:
            # C-level map over the fitted index — no per-value Python frame
            return np.fromiter(
                map(self._index.__getitem__, values),
                dtype=np.int64,
                count=len(values),
            )
        except KeyError as exc:
            raise ValueError(f"unseen label {exc.args[0]!r}") from None

    def fit_transform(self, labels) -> np.ndarray:
        return self.fit(labels).transform(labels)

    def inverse_transform(self, ids: np.ndarray) -> list:
        """Raw label values for integer class ids."""
        return [self.classes_[int(i)] for i in ids]


class FeatureEncoder:
    """Turns a mixed-type :class:`Table` into a dense ``float64`` matrix.

    Numeric features are standardized to zero mean / unit variance using
    training statistics; categorical features are one-hot encoded with the
    training vocabulary (unseen categories become all-zero blocks, which is
    the conventional safe treatment).

    Residual missing values — possible because CleanML deliberately trains
    on *dirty* data for error types other than missing values — are imputed
    at encode time: numeric missing becomes the train mean (0 after
    standardization) and categorical missing becomes an all-zero block.
    This is an encoding necessity, not a cleaning step: it applies equally
    to dirty and clean variants so the measured effect is the cleaning
    itself.
    """

    #: class-level switch: ``False`` routes :meth:`transform` through the
    #: per-row reference implementation.  Flipped (with the runner's
    #: execution caches) by :func:`repro.core.runner.kernel_disabled` so
    #: benchmarks and tests can time and verify the pre-kernel path.
    vectorized: bool = True

    def __init__(self, numeric_missing: str = "mean") -> None:
        if numeric_missing not in ("mean", "nan"):
            raise ValueError("numeric_missing must be 'mean' or 'nan'")
        #: "mean" imputes numeric holes with the train mean at encode
        #: time; "nan" passes NaN through for models that reason about
        #: missingness themselves (NaCL)
        self.numeric_missing = numeric_missing
        self._numeric: list[str] = []
        self._categorical: list[str] = []
        self._means: dict[str, float] = {}
        self._stds: dict[str, float] = {}
        self._vocab: dict[str, list[str]] = {}
        self._index: dict[str, dict[str, int]] = {}
        self.feature_names_: list[str] = []
        self._fitted = False
        # (name, id(base buffer)) -> (buffer, codes); the buffer reference
        # keeps the id stable for as long as the entry lives
        self._code_cache: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}

    def fit(self, table: Table) -> "FeatureEncoder":
        schema = table.schema
        self._numeric = schema.numeric_features
        self._categorical = schema.categorical_features
        self._means, self._stds = {}, {}
        self._vocab, self._index = {}, {}
        self._code_cache = {}  # codes depend on the fitted vocabulary
        for name in self._numeric:
            column = table.column(name)
            mean, std = column.mean(), column.std()
            self._means[name] = 0.0 if np.isnan(mean) else mean
            self._stds[name] = 1.0 if (np.isnan(std) or std == 0.0) else std
        for name in self._categorical:
            column = table.column(name)
            vocab = [str(v) for v in column.unique()]
            self._vocab[name] = vocab
            # the value -> position index is part of the fitted state, so
            # transform never rebuilds it per call
            index = {v: j for j, v in enumerate(vocab)}
            self._index[name] = index
            if table_views_enabled() and index:
                # seed the per-buffer code cache while fit already has
                # the column in hand: every zero-copy view of this
                # table (train/test splits, folds, chunks) then encodes
                # with one integer gather instead of re-running the
                # Python-level value→code map per slice
                buffer = column.base_buffer
                codes = np.fromiter(
                    map(index.get, buffer, repeat(-1)),
                    dtype=np.int64,
                    count=len(buffer),
                )
                self._code_cache[(name, id(buffer))] = (buffer, codes)
        self.feature_names_ = list(self._numeric)
        for name in self._categorical:
            self.feature_names_ += [f"{name}={v}" for v in self._vocab[name]]
        self._fitted = True
        return self

    @property
    def n_features(self) -> int:
        self._require_fitted()
        return len(self.feature_names_)

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` into a dense ``(n_rows, n_features)`` matrix.

        Blocks are written straight into one preallocated output — no
        intermediate per-column blocks, no ``hstack`` reassembly pass —
        which matters at scale: the old shape copied the whole matrix
        twice.  Values, dtype and layout are exactly what hstack-ing
        :meth:`_numeric_block` / :meth:`_one_hot_block` produces (the
        per-row reference path still does precisely that).
        """
        self._require_fitted()
        if not FeatureEncoder.vectorized:
            return self._transform_reference(table)
        n = table.n_rows
        if _metrics is not None:
            _metrics.count("encode.matrix_fills")
            _metrics.count("encode.matrix_cells", n * len(self.feature_names_))
        out = np.zeros((n, len(self.feature_names_)), dtype=np.float64)
        offset = 0
        for name in self._numeric:
            values = table.column(name).gather()
            mean, std = self._means[name], self._stds[name]
            if self.numeric_missing == "mean":
                values[np.isnan(values)] = mean
            out[:, offset] = (values - mean) / std
            offset += 1
        for name in self._categorical:
            width = len(self._vocab[name])
            if width:
                codes = self._category_codes(table.column(name), name, n)
                hits = codes >= 0
                out[np.nonzero(hits)[0], offset + codes[hits]] = 1.0
            offset += width
        return out

    def _numeric_block(self, table: Table, name: str, n: int) -> np.ndarray:
        # gather() is one buffer[indices] slice for a view (the old path
        # materialized the view *and* astype-copied it) and a plain
        # float64 copy for a base column — identical bits either way
        values = table.column(name).gather()
        mean, std = self._means[name], self._stds[name]
        if self.numeric_missing == "mean":
            values[np.isnan(values)] = mean
        return ((values - mean) / std).reshape(n, 1)

    def _one_hot_block(self, table: Table, name: str, n: int) -> np.ndarray:
        """One-hot a categorical column by integer fancy indexing.

        Category codes come from the vocabulary index fitted on the
        training table via one C-level ``map`` (missing and unseen
        values code to -1 — ``None`` is never an index key because
        categorical columns normalize values to ``str``); the block is
        then filled in one ``block[rows, codes] = 1`` scatter instead
        of a per-row 2-d assignment.
        """
        index = self._index[name]
        block = np.zeros((n, len(self._vocab[name])), dtype=np.float64)
        if not index:
            return block
        codes = self._category_codes(table.column(name), name, n)
        hits = codes >= 0
        block[np.nonzero(hits)[0], codes[hits]] = 1.0
        return block

    def _category_codes(self, column, name: str, n: int) -> np.ndarray:
        """Vocabulary codes for a categorical column, view-aware.

        For a base column this is the direct value→code map.  For a
        zero-copy view the codes are computed once over the shared
        *base* buffer, cached per ``(name, buffer)``, and re-sliced with
        the view's index array — ``codes_base[view_indices]`` is
        value-for-value what mapping the materialized view would give,
        at integer-gather cost.
        """
        index = self._index[name]
        if not column.is_view:
            return np.fromiter(
                map(index.get, column.values, repeat(-1)), dtype=np.int64, count=n
            )
        base = column.base_buffer
        key = (name, id(base))
        cached = self._code_cache.get(key)
        if cached is None:
            if _metrics is not None:
                _metrics.count("encode.code_cache.misses")
            codes = np.fromiter(
                map(index.get, base, repeat(-1)), dtype=np.int64, count=len(base)
            )
            cached = (base, codes)
            self._code_cache[key] = cached
        elif _metrics is not None:
            _metrics.count("encode.code_cache.hits")
        return cached[1][column.view_indices]

    def _transform_reference(self, table: Table) -> np.ndarray:
        """The original per-row transform — kept as the executable spec.

        The vectorized :meth:`transform` must produce bit-identical
        output (values, dtype, and column order); the split-kernel tests
        and benchmark assert that equality, so the fast path can never
        silently drift from these semantics.
        """
        self._require_fitted()
        n = table.n_rows
        blocks: list[np.ndarray] = []
        for name in self._numeric:
            blocks.append(self._numeric_block(table, name, n))
        for name in self._categorical:
            vocab = self._vocab[name]
            block = np.zeros((n, len(vocab)), dtype=np.float64)
            index = self._index[name]
            for i, value in enumerate(table.column(name).values):
                if value is not None and str(value) in index:
                    block[i, index[str(value)]] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((n, 0), dtype=np.float64)
        return np.hstack(blocks)

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("encoder is not fitted; call fit() first")


def encode_pair(
    train: Table, test: Table
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, LabelEncoder]:
    """Encode a (train, test) pair leakage-free.

    Returns ``(X_train, y_train, X_test, y_test, label_encoder)``.  The
    label encoder is fitted on the union of both label columns so that a
    class present only in the test split still gets an id (the model will
    simply never predict it).
    """
    encoder = FeatureEncoder().fit(train.features_table())
    x_train = encoder.transform(train.features_table())
    x_test = encoder.transform(test.features_table())
    labeler = LabelEncoder().fit(
        list(train.labels.tolist()) + list(test.labels.tolist())
    )
    y_train = labeler.transform(train.labels)
    y_test = labeler.transform(test.labels)
    return x_train, y_train, x_test, y_test, labeler


def _to_list(labels) -> list:
    if isinstance(labels, np.ndarray):
        return labels.tolist()
    return list(labels)
