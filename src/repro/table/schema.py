"""Schema definitions for the tabular substrate.

CleanML operates on relational datasets with mixed numeric / categorical
columns, an optional label column, and optional key columns (used by the
key-collision duplicate detector).  The :class:`Schema` captures that
structure; :class:`repro.table.Table` carries the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ColumnType(Enum):
    """Storage/semantic type of a table column.

    NUMERIC columns are stored as ``float64`` arrays with ``NaN`` marking
    missing entries.  CATEGORICAL columns are stored as object arrays of
    ``str`` with ``None`` marking missing entries.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of a single column."""

    name: str
    ctype: ColumnType

    @property
    def is_numeric(self) -> bool:
        return self.ctype is ColumnType.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.ctype is ColumnType.CATEGORICAL


@dataclass(frozen=True)
class Schema:
    """Ordered collection of column specs plus dataset roles.

    Parameters
    ----------
    columns:
        Ordered tuple of :class:`ColumnSpec` covering every column,
        including the label column if present.
    label:
        Name of the classification label column, or ``None`` for unlabeled
        tables (e.g. intermediate cleaning artifacts).
    keys:
        Names of the key columns that are supposed to uniquely identify a
        real-world entity.  Used by key-collision duplicate detection.
    hidden:
        Bookkeeping columns (e.g. the row-id used to align dirty data
        with ground truth) that are excluded from features, cleaning and
        encoding but travel with the table.
    """

    columns: tuple[ColumnSpec, ...]
    label: str | None = None
    keys: tuple[str, ...] = field(default=())
    hidden: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")
        if self.label is not None and self.label not in names:
            raise ValueError(f"label column {self.label!r} not in schema")
        for key in self.keys:
            if key not in names:
                raise ValueError(f"key column {key!r} not in schema")
        for name in self.hidden:
            if name not in names:
                raise ValueError(f"hidden column {name!r} not in schema")
        if self.label is not None and self.label in self.hidden:
            raise ValueError("the label column cannot be hidden")

    # -- lookups -----------------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Column names in schema order."""
        return [spec.name for spec in self.columns]

    def spec(self, name: str) -> ColumnSpec:
        """Return the :class:`ColumnSpec` for ``name``.

        Raises ``KeyError`` if the column does not exist.
        """
        for spec in self.columns:
            if spec.name == name:
                return spec
        raise KeyError(f"no column named {name!r}")

    def __contains__(self, name: object) -> bool:
        return any(spec.name == name for spec in self.columns)

    def ctype(self, name: str) -> ColumnType:
        return self.spec(name).ctype

    @property
    def feature_names(self) -> list[str]:
        """All column names except the label and hidden columns."""
        return [
            n for n in self.names if n != self.label and n not in self.hidden
        ]

    @property
    def numeric_features(self) -> list[str]:
        return [
            spec.name
            for spec in self.columns
            if spec.is_numeric
            and spec.name != self.label
            and spec.name not in self.hidden
        ]

    @property
    def categorical_features(self) -> list[str]:
        return [
            spec.name
            for spec in self.columns
            if spec.is_categorical
            and spec.name != self.label
            and spec.name not in self.hidden
        ]

    # -- derivations -------------------------------------------------------

    def drop(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """Schema without the given columns (label/keys pruned as needed)."""
        dropped = set(names)
        columns = tuple(s for s in self.columns if s.name not in dropped)
        label = self.label if self.label not in dropped else None
        keys = tuple(k for k in self.keys if k not in dropped)
        hidden = tuple(h for h in self.hidden if h not in dropped)
        return Schema(columns=columns, label=label, keys=keys, hidden=hidden)

    def rename_label(self, label: str | None) -> "Schema":
        """Schema with a different (or no) label column."""
        return Schema(
            columns=self.columns, label=label, keys=self.keys, hidden=self.hidden
        )

    def with_hidden(self, names: tuple[str, ...]) -> "Schema":
        """Schema with the given columns marked as hidden bookkeeping."""
        return Schema(
            columns=self.columns, label=self.label, keys=self.keys, hidden=names
        )


def make_schema(
    numeric: list[str] | tuple[str, ...] = (),
    categorical: list[str] | tuple[str, ...] = (),
    label: str | None = None,
    label_type: ColumnType = ColumnType.CATEGORICAL,
    keys: tuple[str, ...] = (),
    hidden: tuple[str, ...] = (),
) -> Schema:
    """Convenience constructor used by the dataset generators.

    ``numeric`` and ``categorical`` list the *feature* columns; the label is
    appended as its own column with ``label_type`` unless it already appears
    among the listed columns.
    """
    columns = [ColumnSpec(name, ColumnType.NUMERIC) for name in numeric]
    columns += [ColumnSpec(name, ColumnType.CATEGORICAL) for name in categorical]
    if label is not None and all(spec.name != label for spec in columns):
        columns.append(ColumnSpec(label, label_type))
    return Schema(
        columns=tuple(columns), label=label, keys=tuple(keys), hidden=tuple(hidden)
    )
