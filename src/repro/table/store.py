"""Binary columnar on-disk format with memory-mapped loading.

A **store** is a directory holding one ``.npy`` file per column plus a
``manifest.json`` that carries the schema, the row count, and (for
categorical columns) the value dictionary:

``manifest.json``::

    {
      "format": 1,
      "n_rows": 1200000,
      "label": "y", "keys": [...], "hidden": [...],
      "columns": [
        {"name": "age", "type": "numeric", "file": "col_00000.npy"},
        {"name": "city", "type": "categorical", "file": "col_00001.npy",
         "dictionary": ["tokyo", "lima"]}
      ]
    }

Numeric columns are little-endian ``float64`` (``NaN`` = missing) and
load back with ``np.load(..., mmap_mode="r")`` — the returned read-only
memmap *is* the column's base buffer, so the zero-copy view machinery
(``take``/``mask``/``iter_chunks``) composes index arrays over the map
and a slice of an on-disk table never allocates a resident value copy.
Categorical columns are little-endian ``int32`` codes (``-1`` =
missing) into the manifest dictionary, decoded lazily through a shared
:class:`~repro.table.column._LazyBuffer` cell on first touch.

:class:`ColumnarWriter` appends row chunks incrementally — each column
file starts with a placeholder npy header that :meth:`finalize`
rewrites with the final shape — so a writer never holds more than one
chunk resident.  That is what ``read_csv(..., spill=...)`` and the
spill-aware injectors stream through.

Following the repo-wide kernel pattern, :func:`table_streaming_disabled`
switches the whole streaming stack back to the eager reference
behavior: ``load_columnar`` materializes resident columns, ``read_csv``
runs the historical row-major parser, ``write_csv`` the per-cell
formatter, and the injectors ignore their ``spill`` arguments.  Both
modes must produce byte-identical study output — pinned by
``tests/test_out_of_core.py`` and gated by
``benchmarks/bench_out_of_core.py``.
"""

from __future__ import annotations

import json
import os
import struct
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .column import Column, _LazyBuffer
from .schema import ColumnSpec, ColumnType, Schema
from .table import Table

STORE_FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

#: default row-chunk size for every streaming entry point
DEFAULT_CHUNK_ROWS = 65536

#: categorical code reserved for missing values
_MISSING_CODE = -1

_NUMERIC_DESCR = "<f8"
_CODES_DESCR = "<i4"

#: process-wide switch for the streaming/memmap table stack; flip only
#: through :func:`table_streaming_disabled`
_STREAMING_ENABLED = True


def table_streaming_enabled() -> bool:
    """Whether tables load memory-mapped and I/O streams in chunks."""
    return _STREAMING_ENABLED


@contextmanager
def table_streaming_disabled():
    """Run on the eager (fully-resident) reference table I/O for the block.

    ``load_columnar`` materializes every column into resident arrays,
    ``read_csv``/``write_csv`` fall back to the historical row-major
    implementations, and the injectors' ``spill`` parameters become
    no-ops.  The streaming path must produce byte-identical persisted
    study output — the same contract every other kernel switch in this
    repo enforces.
    """
    global _STREAMING_ENABLED
    previous = _STREAMING_ENABLED
    _STREAMING_ENABLED = False
    try:
        yield
    finally:
        _STREAMING_ENABLED = previous


# -- incremental .npy files -------------------------------------------------

#: fixed total header size; rewritten in place once the row count is known
_HEADER_SIZE = 128


def _npy_header(descr: str, n_rows: int) -> bytes:
    """A v1 ``.npy`` header padded to exactly ``_HEADER_SIZE`` bytes."""
    body = "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        n_rows,
    )
    # magic(6) + version(2) + HEADER_LEN(2) + body + padding + newline
    pad = _HEADER_SIZE - 10 - 1 - len(body)
    if pad < 0:  # pragma: no cover - row counts this large don't fit in RAM
        raise ValueError("npy header does not fit the fixed 128-byte slot")
    text = body + " " * pad + "\n"
    return b"\x93NUMPY" + bytes([1, 0]) + struct.pack("<H", len(text)) + text.encode("latin1")


class _NpyColumnFile:
    """One column file being written incrementally."""

    def __init__(self, path: Path, descr: str) -> None:
        self.path = path
        self.descr = descr
        self.n_rows = 0
        self._handle = open(path, "wb")
        self._handle.write(_npy_header(descr, 0))

    def append(self, values: np.ndarray) -> None:
        data = np.ascontiguousarray(values).astype(self.descr, copy=False)
        self._handle.write(data.tobytes())
        self.n_rows += len(data)

    def finalize(self) -> None:
        self._handle.seek(0)
        self._handle.write(_npy_header(self.descr, self.n_rows))
        self._handle.flush()
        self._handle.close()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# -- writing ----------------------------------------------------------------


class ColumnarWriter:
    """Stream row chunks of one schema into a columnar store directory.

    Usage::

        writer = ColumnarWriter(path, table.schema)
        for chunk in table.iter_chunks(65536):
            writer.append(chunk)
        writer.finalize()
        mapped = load_columnar(path)

    Categorical values are dictionary-encoded incrementally: codes are
    assigned in first-appearance order across the appended chunks, and
    the dictionary lands in the manifest at :meth:`finalize`.
    """

    def __init__(self, path: str | Path, schema: Schema) -> None:
        self.path = Path(path)
        self.schema = schema
        self.path.mkdir(parents=True, exist_ok=True)
        self._files: dict[str, _NpyColumnFile] = {}
        self._dicts: dict[str, dict[str, int]] = {}
        self._n_rows = 0
        self._finalized = False
        for index, spec in enumerate(schema.columns):
            descr = _NUMERIC_DESCR if spec.is_numeric else _CODES_DESCR
            self._files[spec.name] = _NpyColumnFile(
                self.path / f"col_{index:05d}.npy", descr
            )
            if not spec.is_numeric:
                self._dicts[spec.name] = {}

    def append(self, chunk: Table) -> None:
        """Append one row chunk (a table with this writer's schema)."""
        arrays = {
            spec.name: chunk.column(spec.name).values
            for spec in self.schema.columns
        }
        self.append_arrays(arrays, n_rows=chunk.n_rows)

    def append_arrays(self, arrays: dict[str, np.ndarray], n_rows: int | None = None) -> None:
        """Append one row chunk given as per-column value arrays.

        ``n_rows`` is only required for zero-column schemas, where the
        row count cannot be inferred from the arrays.
        """
        if n_rows is None:
            if not arrays:
                raise ValueError("n_rows is required for zero-column appends")
            n_rows = len(next(iter(arrays.values())))
        for spec in self.schema.columns:
            values = arrays[spec.name]
            if len(values) != n_rows:
                raise ValueError(
                    f"column {spec.name!r} chunk has {len(values)} rows, "
                    f"expected {n_rows}"
                )
            if spec.is_numeric:
                self._files[spec.name].append(values)
            else:
                self._files[spec.name].append(self._encode(spec.name, values))
        self._n_rows += int(n_rows)

    def _encode(self, name: str, values: np.ndarray) -> np.ndarray:
        dictionary = self._dicts[name]
        codes = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            if value is None:
                codes[i] = _MISSING_CODE
            else:
                code = dictionary.get(value)
                if code is None:
                    code = len(dictionary)
                    dictionary[value] = code
                codes[i] = code
        return codes

    def finalize(self, n_rows: int | None = None) -> Path:
        """Rewrite the column headers with final shapes, write the manifest."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if n_rows is not None and n_rows != self._n_rows:
            raise ValueError(
                f"expected {n_rows} rows but {self._n_rows} were appended"
            )
        entries = []
        for index, spec in enumerate(self.schema.columns):
            column_file = self._files[spec.name]
            if column_file.n_rows != self._n_rows:
                raise ValueError(
                    f"column {spec.name!r} has {column_file.n_rows} rows, "
                    f"expected {self._n_rows}"
                )
            column_file.finalize()
            entry = {
                "name": spec.name,
                "type": spec.ctype.value,
                "file": column_file.path.name,
            }
            if not spec.is_numeric:
                dictionary = self._dicts[spec.name]
                entry["dictionary"] = list(dictionary)
            entries.append(entry)
        manifest = {
            "format": STORE_FORMAT_VERSION,
            "n_rows": self._n_rows,
            "label": self.schema.label,
            "keys": list(self.schema.keys),
            "hidden": list(self.schema.hidden),
            "columns": entries,
        }
        manifest_path = self.path / MANIFEST_NAME
        temp_path = self.path / (MANIFEST_NAME + ".tmp")
        with open(temp_path, "w") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(temp_path, manifest_path)
        self._finalized = True
        return self.path

    def close(self) -> None:
        """Release file handles without finalizing (error cleanup path)."""
        for column_file in self._files.values():
            column_file.close()

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None or not self._finalized:
            self.close()


def save_columnar(
    table: Table, path: str | Path, chunk_rows: int | None = None
) -> Path:
    """Persist ``table`` to a columnar store directory at ``path``.

    Streams through ``iter_chunks`` so peak resident memory is one
    chunk, even when ``table`` is itself a view or memory-mapped.
    """
    chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
    with ColumnarWriter(path, table.schema) as writer:
        for chunk in table.iter_chunks(chunk_rows):
            writer.append(chunk)
        writer.finalize(n_rows=table.n_rows)
    return Path(path)


def spill_table(
    table: Table, path: str | Path, chunk_rows: int | None = None
) -> Table:
    """Write ``table`` to a store and hand back the loaded (mapped) table."""
    save_columnar(table, path, chunk_rows)
    return load_columnar(path)


# -- loading ----------------------------------------------------------------

#: manifest realpath -> (mtime_ns, parsed manifest)
_MANIFEST_CACHE: dict[str, tuple[int, dict]] = {}

#: (store realpath, manifest mtime_ns, column name) -> buffer or lazy cell.
#: Shared process-wide so that unpickling many views of one store opens
#: each memmap once; the mtime in the key invalidates rewritten stores.
_BUFFER_CACHE: dict[tuple[str, int, str], object] = {}


def _read_manifest(path: Path) -> tuple[int, dict]:
    manifest_path = path / MANIFEST_NAME
    real = os.path.realpath(manifest_path)
    mtime = os.stat(real).st_mtime_ns
    cached = _MANIFEST_CACHE.get(real)
    if cached is None or cached[0] != mtime:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        version = manifest.get("format")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported columnar store format {version!r} at {path}"
            )
        cached = (mtime, manifest)
        _MANIFEST_CACHE[real] = cached
    return cached


def _schema_from_manifest(manifest: dict) -> Schema:
    specs = tuple(
        ColumnSpec(entry["name"], ColumnType(entry["type"]))
        for entry in manifest["columns"]
    )
    return Schema(
        columns=specs,
        label=manifest["label"],
        keys=tuple(manifest["keys"]),
        hidden=tuple(manifest["hidden"]),
    )


def _decode_codes(codes: np.ndarray, dictionary: tuple[str, ...]) -> np.ndarray:
    """int32 codes -> object-of-str buffer (``-1`` decodes to ``None``)."""
    lookup = np.empty(len(dictionary) + 1, dtype=object)
    for code, value in enumerate(dictionary):
        lookup[code] = value
    lookup[-1] = None  # _MISSING_CODE indexes here from the end
    return lookup[codes]


def _open_buffer(store: Path, mtime: int, entry: dict, n_rows: int):
    """The shared buffer (or lazy cell) for one column of a store."""
    key = (os.path.realpath(store), mtime, entry["name"])
    buffer = _BUFFER_CACHE.get(key)
    if buffer is None:
        file = store / entry["file"]
        if entry["type"] == ColumnType.NUMERIC.value:
            if n_rows == 0:
                # zero-length arrays cannot memory-map; a resident empty
                # array is an exact stand-in
                buffer = np.load(file)
            else:
                buffer = np.load(file, mmap_mode="r")
            buffer.setflags(write=False)
        else:
            dictionary = tuple(entry.get("dictionary", ()))

            def loader(file=file, dictionary=dictionary, n_rows=n_rows):
                codes = np.load(file, mmap_mode="r") if n_rows else np.load(file)
                return _decode_codes(codes, dictionary)

            buffer = _LazyBuffer(loader, n_rows)
        _BUFFER_CACHE[key] = buffer
    return buffer


def load_columnar(path: str | Path) -> Table:
    """Load a store written by :class:`ColumnarWriter`/:func:`save_columnar`.

    With streaming enabled the returned table is **file-backed**:
    numeric buffers are read-only memmaps, categorical buffers decode
    lazily, and pickling ships store paths instead of data.  Under
    :func:`table_streaming_disabled` every column materializes into an
    ordinary resident array instead (the eager reference behavior).
    """
    path = Path(path)
    mtime, manifest = _read_manifest(path)
    schema = _schema_from_manifest(manifest)
    n_rows = int(manifest["n_rows"])
    columns: dict[str, Column] = {}
    for entry in manifest["columns"]:
        name = entry["name"]
        ctype = ColumnType(entry["type"])
        if not _STREAMING_ENABLED:
            columns[name] = _load_column_eager(path, entry)
            continue
        source = (str(path), name)
        buffer = _open_buffer(path, mtime, entry, n_rows)
        if isinstance(buffer, _LazyBuffer):
            columns[name] = Column.from_lazy(buffer, ctype, source=source)
        else:
            columns[name] = Column.from_buffer(buffer, ctype, source=source)
    return Table(schema, columns, n_rows=n_rows)


def _load_column_eager(store: Path, entry: dict) -> Column:
    """Reference load: fully resident, never mapped, no provenance."""
    ctype = ColumnType(entry["type"])
    raw = np.load(store / entry["file"])
    if ctype is ColumnType.NUMERIC:
        return Column.from_buffer(raw.astype(np.float64, copy=False), ctype)
    decoded = _decode_codes(raw, tuple(entry.get("dictionary", ())))
    return Column.from_buffer(decoded, ctype)


def attach_source(column: Column, source: tuple[str, str]) -> None:
    """Re-bind an unpickled file-backed column to its local store.

    Called from ``Column.__setstate__``: the pickle carried only
    ``(store directory, column name)`` plus view indices, so the
    receiving process opens (or re-uses, via the process-wide cache)
    the memmap/lazy cell itself.
    """
    store = Path(source[0])
    mtime, manifest = _read_manifest(store)
    entries = {entry["name"]: entry for entry in manifest["columns"]}
    entry = entries[source[1]]
    buffer = _open_buffer(store, mtime, entry, int(manifest["n_rows"]))
    if isinstance(buffer, _LazyBuffer):
        column._buffer = None
        column._lazy = buffer
    else:
        column._buffer = buffer
        column._lazy = None
    column._source = source
