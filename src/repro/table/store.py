"""Binary columnar on-disk format with memory-mapped, verified loading.

A **store** is a directory holding one ``.npy`` file per column plus a
``manifest.json`` that carries the schema, the row count, and (for
categorical columns) the value dictionary.  Format 2 adds end-to-end
integrity metadata — a per-column content digest and byte length, plus a
store-level generation stamp:

``manifest.json``::

    {
      "format": 2,
      "n_rows": 1200000,
      "generation": 1,
      "label": "y", "keys": [...], "hidden": [...],
      "source": {"kind": "csv", "path": "/data/x.csv", "chunk_rows": 65536},
      "columns": [
        {"name": "age", "type": "numeric", "file": "col_00000.npy",
         "sha256": "ab12...", "n_bytes": 9600000},
        {"name": "city", "type": "categorical", "file": "col_00001.npy",
         "sha256": "cd34...", "n_bytes": 4800000,
         "dictionary": ["tokyo", "lima"]}
      ]
    }

Numeric columns are little-endian ``float64`` (``NaN`` = missing) and
load back with ``np.load(..., mmap_mode="r")`` — the returned read-only
memmap *is* the column's base buffer, so the zero-copy view machinery
(``take``/``mask``/``iter_chunks``) composes index arrays over the map
and a slice of an on-disk table never allocates a resident value copy.
Categorical columns are little-endian ``int32`` codes (``-1`` =
missing) into the manifest dictionary, decoded lazily through a shared
:class:`~repro.table.column._LazyBuffer` cell on first touch.

:class:`ColumnarWriter` appends row chunks incrementally — each column
file starts with a placeholder npy header that :meth:`finalize`
rewrites with the final shape — so a writer never holds more than one
chunk resident.  That is what ``read_csv(..., spill=...)`` and the
spill-aware injectors stream through.

Integrity
---------

The ``sha256`` entry hashes exactly the payload bytes streamed through
:meth:`ColumnarWriter.append` (everything after the fixed 128-byte npy
header), updated incrementally as chunks are written — zero extra
passes over the data.  Verification is mode-controlled
(:func:`set_store_verification`, CLI ``--verify-store``):

* ``"lazy"`` (default) — :func:`load_columnar` checks manifest shape
  and byte length eagerly, and each column's digest is verified once
  per process on first materialization (through regular file reads,
  never through the map, so a truncated file raises instead of
  delivering ``SIGBUS``).
* ``"eager"`` — all digests are verified up front in ``load_columnar``.
* ``"off"`` — the unverified format-1 behaviour.

Every detected inconsistency raises :class:`StoreCorruptionError` with
a ``kind`` from the taxonomy below, the store path, and (when known)
the column name.  Format-1 stores still load but are flagged
unverifiable (:func:`store_info`).  A store whose manifest records a
``source`` (or that was registered via :func:`register_store_source`)
can be healed in place by :func:`recover_store`: rebuild from source
under a bumped ``generation`` — the manifest mtime changes, so the
mtime-keyed per-process caches re-open fresh maps — or degrade to the
eager in-memory table.

Following the repo-wide kernel pattern, :func:`table_streaming_disabled`
switches the whole streaming stack back to the eager reference
behavior, and :func:`store_verification_disabled` keeps the unverified
load path as the executable reference for the integrity layer.  All
modes must produce byte-identical study output — pinned by
``tests/test_out_of_core.py`` / ``tests/test_storage_integrity.py`` and
gated by ``benchmarks/bench_out_of_core.py`` /
``benchmarks/bench_storage_integrity.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from .column import Column, _LazyBuffer
from .schema import ColumnSpec, ColumnType, Schema
from .table import Table

STORE_FORMAT_VERSION = 2
#: manifest formats this reader accepts (format 1 loads unverified)
SUPPORTED_STORE_FORMATS = (1, 2)
MANIFEST_NAME = "manifest.json"

#: default row-chunk size for every streaming entry point
DEFAULT_CHUNK_ROWS = 65536

#: categorical code reserved for missing values
_MISSING_CODE = -1

_NUMERIC_DESCR = "<f8"
_CODES_DESCR = "<i4"

#: process-wide switch for the streaming/memmap table stack; flip only
#: through :func:`table_streaming_disabled`
_STREAMING_ENABLED = True

#: verification modes, least to most paranoid
VERIFY_MODES = ("off", "lazy", "eager")

#: process-wide digest-verification mode; flip through
#: :func:`set_store_verification` / :func:`store_verification_disabled`
_VERIFY_MODE = "lazy"


def table_streaming_enabled() -> bool:
    """Whether tables load memory-mapped and I/O streams in chunks."""
    return _STREAMING_ENABLED


@contextmanager
def table_streaming_disabled():
    """Run on the eager (fully-resident) reference table I/O for the block.

    ``load_columnar`` materializes every column into resident arrays,
    ``read_csv``/``write_csv`` fall back to the historical row-major
    implementations, and the injectors' ``spill`` parameters become
    no-ops.  The streaming path must produce byte-identical persisted
    study output — the same contract every other kernel switch in this
    repo enforces.
    """
    global _STREAMING_ENABLED
    previous = _STREAMING_ENABLED
    _STREAMING_ENABLED = False
    try:
        yield
    finally:
        _STREAMING_ENABLED = previous


def store_verification_mode() -> str:
    """The active digest-verification mode (``off``/``lazy``/``eager``)."""
    return _VERIFY_MODE


def set_store_verification(mode: str) -> None:
    """Set the process-wide digest-verification mode.

    ``"lazy"`` (the default) verifies each column's content digest once
    per process on first materialization; ``"eager"`` verifies every
    digest inside :func:`load_columnar`; ``"off"`` is the unverified
    reference path.  Workers inherit the parent's mode through the
    fork-based pool start.
    """
    global _VERIFY_MODE
    if mode not in VERIFY_MODES:
        raise ValueError(f"unknown store verification mode {mode!r}")
    _VERIFY_MODE = mode


@contextmanager
def store_verification(mode: str):
    """Run the block under a specific verification mode."""
    previous = _VERIFY_MODE
    set_store_verification(mode)
    try:
        yield
    finally:
        set_store_verification(previous)


@contextmanager
def store_verification_disabled():
    """Run on the unverified (format-1 behaviour) reference load path.

    The kernel-toggle convention: the pre-integrity code survives as
    the executable spec, and the verified path must produce
    byte-identical study output — pinned by
    ``tests/test_storage_integrity.py``.
    """
    with store_verification("off"):
        yield


# -- corruption taxonomy ----------------------------------------------------

TRUNCATED_COLUMN = "truncated_column"
HEADER_MISMATCH = "header_mismatch"
DIGEST_MISMATCH = "digest_mismatch"
TORN_MANIFEST = "torn_manifest"
VERSION_SKEW = "version_skew"
MISSING_COLUMN = "missing_column"
MISSING_MANIFEST = "missing_manifest"


class StoreCorruptionError(RuntimeError):
    """A columnar store failed an integrity check.

    ``kind`` is one of the taxonomy constants above; ``store`` is the
    store directory and ``column`` the offending column name when one
    is known.  The error pickles losslessly (it crosses the pool
    boundary so the supervisor-side recovery ladder can read ``store``).
    """

    def __init__(
        self,
        kind: str,
        store: str | Path,
        column: str | None = None,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.store = str(store)
        self.column = column
        self.detail = detail
        message = f"{kind} in columnar store {self.store}"
        if column is not None:
            message += f", column {column!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.kind, self.store, self.column, self.detail))


# -- injected I/O faults ----------------------------------------------------

#: optional hook(op, store_key) raising OSError to simulate disk faults;
#: installed by the chaos harness (core/faults.py), never set in
#: production.  ``op`` is "write" (store writes) or "read" (digest
#: verification reads).
_IO_FAULT_HOOK: Optional[Callable[[str, str], None]] = None


def set_io_fault_hook(hook: Callable[[str, str], None] | None) -> None:
    """Install (or clear) the injected-I/O-fault hook for this process."""
    global _IO_FAULT_HOOK
    _IO_FAULT_HOOK = hook


def _store_fault_key(store: Path) -> str:
    """A tmpdir-stable key for a store directory (last two components)."""
    real = Path(os.path.realpath(store))
    return f"{real.parent.name}/{real.name}"


def _fire_io_fault(op: str, store: Path) -> None:
    hook = _IO_FAULT_HOOK
    if hook is not None:
        hook(op, _store_fault_key(store))


# -- incremental .npy files -------------------------------------------------

#: fixed total header size; rewritten in place once the row count is known
_HEADER_SIZE = 128


def _npy_header(descr: str, n_rows: int) -> bytes:
    """A v1 ``.npy`` header padded to exactly ``_HEADER_SIZE`` bytes."""
    body = "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }" % (
        descr,
        n_rows,
    )
    # magic(6) + version(2) + HEADER_LEN(2) + body + padding + newline
    pad = _HEADER_SIZE - 10 - 1 - len(body)
    if pad < 0:  # pragma: no cover - row counts this large don't fit in RAM
        raise ValueError("npy header does not fit the fixed 128-byte slot")
    text = body + " " * pad + "\n"
    return b"\x93NUMPY" + bytes([1, 0]) + struct.pack("<H", len(text)) + text.encode("latin1")


class _NpyColumnFile:
    """One column file being written incrementally.

    The payload digest is fed as bytes stream out, so by
    :meth:`finalize` the sha256 of everything after the fixed header is
    already known — integrity metadata costs no second pass.  (The
    back-patched header itself is not digested; its shape claim is
    cross-checked against the manifest row count at load time instead.)
    """

    def __init__(self, path: Path, descr: str) -> None:
        self.path = path
        self.descr = descr
        self.n_rows = 0
        self.n_bytes = 0
        self._sha256 = hashlib.sha256()
        self._handle = open(path, "wb")
        self._handle.write(_npy_header(descr, 0))

    def append(self, values: np.ndarray) -> None:
        data = np.ascontiguousarray(values).astype(self.descr, copy=False)
        payload = data.tobytes()
        self._handle.write(payload)
        self._sha256.update(payload)
        self.n_rows += len(data)
        self.n_bytes += len(payload)

    def digest(self) -> str:
        return self._sha256.hexdigest()

    def finalize(self) -> None:
        self._handle.seek(0)
        self._handle.write(_npy_header(self.descr, self.n_rows))
        self._handle.flush()
        self._handle.close()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


# -- writing ----------------------------------------------------------------


def _fsync_directory(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported here
        pass
    finally:
        os.close(fd)


class ColumnarWriter:
    """Stream row chunks of one schema into a columnar store directory.

    Usage::

        writer = ColumnarWriter(path, table.schema)
        for chunk in table.iter_chunks(65536):
            writer.append(chunk)
        writer.finalize()
        mapped = load_columnar(path)

    Categorical values are dictionary-encoded incrementally: codes are
    assigned in first-appearance order across the appended chunks, and
    the dictionary lands in the manifest at :meth:`finalize` together
    with each column's streamed sha256 digest and payload byte length.

    Rewriting an existing store bumps the manifest ``generation`` and
    replaces the column files (old files are unlinked first, so
    already-open maps in other processes keep their inodes while new
    opens see the new data).  If an exception — including an injected
    ``ENOSPC`` — escapes mid-write, the ``with`` form unlinks the
    partial ``.npy`` files and removes a directory it created, so a
    failed spill never leaves a mappable-looking corpse.
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema,
        *,
        source: dict | None = None,
        generation: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.schema = schema
        self._created_dir = not self.path.exists()
        self.path.mkdir(parents=True, exist_ok=True)
        if generation is None:
            generation = _next_generation(self.path)
        self.generation = generation
        self._source = source
        self._files: dict[str, _NpyColumnFile] = {}
        self._dicts: dict[str, dict[str, int]] = {}
        self._n_rows = 0
        self._finalized = False
        for index, spec in enumerate(schema.columns):
            descr = _NUMERIC_DESCR if spec.is_numeric else _CODES_DESCR
            file_path = self.path / f"col_{index:05d}.npy"
            try:
                os.unlink(file_path)  # rebuilds must not mutate mapped inodes
            except FileNotFoundError:
                pass
            self._files[spec.name] = _NpyColumnFile(file_path, descr)
            if not spec.is_numeric:
                self._dicts[spec.name] = {}

    def append(self, chunk: Table) -> None:
        """Append one row chunk (a table with this writer's schema)."""
        arrays = {
            spec.name: chunk.column(spec.name).values
            for spec in self.schema.columns
        }
        self.append_arrays(arrays, n_rows=chunk.n_rows)

    def append_arrays(self, arrays: dict[str, np.ndarray], n_rows: int | None = None) -> None:
        """Append one row chunk given as per-column value arrays.

        ``n_rows`` is only required for zero-column schemas, where the
        row count cannot be inferred from the arrays.
        """
        if n_rows is None:
            if not arrays:
                raise ValueError("n_rows is required for zero-column appends")
            n_rows = len(next(iter(arrays.values())))
        _fire_io_fault("write", self.path)
        for spec in self.schema.columns:
            values = arrays[spec.name]
            if len(values) != n_rows:
                raise ValueError(
                    f"column {spec.name!r} chunk has {len(values)} rows, "
                    f"expected {n_rows}"
                )
            if spec.is_numeric:
                self._files[spec.name].append(values)
            else:
                self._files[spec.name].append(self._encode(spec.name, values))
        self._n_rows += int(n_rows)

    def _encode(self, name: str, values: np.ndarray) -> np.ndarray:
        dictionary = self._dicts[name]
        codes = np.empty(len(values), dtype=np.int32)
        for i, value in enumerate(values):
            if value is None:
                codes[i] = _MISSING_CODE
            else:
                code = dictionary.get(value)
                if code is None:
                    code = len(dictionary)
                    dictionary[value] = code
                codes[i] = code
        return codes

    def finalize(self, n_rows: int | None = None) -> Path:
        """Rewrite the column headers with final shapes, write the manifest."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        if n_rows is not None and n_rows != self._n_rows:
            raise ValueError(
                f"expected {n_rows} rows but {self._n_rows} were appended"
            )
        _fire_io_fault("write", self.path)
        entries = []
        for index, spec in enumerate(self.schema.columns):
            column_file = self._files[spec.name]
            if column_file.n_rows != self._n_rows:
                raise ValueError(
                    f"column {spec.name!r} has {column_file.n_rows} rows, "
                    f"expected {self._n_rows}"
                )
            column_file.finalize()
            entry = {
                "name": spec.name,
                "type": spec.ctype.value,
                "file": column_file.path.name,
                "sha256": column_file.digest(),
                "n_bytes": column_file.n_bytes,
            }
            if not spec.is_numeric:
                dictionary = self._dicts[spec.name]
                entry["dictionary"] = list(dictionary)
            entries.append(entry)
        manifest = {
            "format": STORE_FORMAT_VERSION,
            "n_rows": self._n_rows,
            "generation": self.generation,
            "label": self.schema.label,
            "keys": list(self.schema.keys),
            "hidden": list(self.schema.hidden),
            "columns": entries,
        }
        if self._source is not None:
            manifest["source"] = self._source
        manifest_path = self.path / MANIFEST_NAME
        temp_path = self.path / (MANIFEST_NAME + ".tmp")
        with open(temp_path, "w") as handle:
            json.dump(manifest, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, manifest_path)
        _fsync_directory(self.path)
        _GENERATION_HINTS[os.path.realpath(self.path)] = self.generation
        self._finalized = True
        return self.path

    def close(self) -> None:
        """Release file handles without finalizing (error cleanup path)."""
        for column_file in self._files.values():
            column_file.close()

    def abort(self) -> None:
        """Unlink the partial column files written so far.

        Also removes the manifest tmp file and, when this writer created
        the store directory, the (now empty) directory itself.
        """
        self.close()
        for column_file in self._files.values():
            try:
                os.unlink(column_file.path)
            except OSError:
                pass
        try:
            os.unlink(self.path / (MANIFEST_NAME + ".tmp"))
        except OSError:
            pass
        if self._created_dir:
            try:
                self.path.rmdir()  # only succeeds when empty
            except OSError:
                pass

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._finalized:
            self.close()


def save_columnar(
    table: Table,
    path: str | Path,
    chunk_rows: int | None = None,
    *,
    source: dict | None = None,
) -> Path:
    """Persist ``table`` to a columnar store directory at ``path``.

    Streams through ``iter_chunks`` so peak resident memory is one
    chunk, even when ``table`` is itself a view or memory-mapped.
    ``source`` (optional) is recorded in the manifest so the store can
    be rebuilt after corruption (see :func:`recover_store`).
    """
    chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
    with ColumnarWriter(path, table.schema, source=source) as writer:
        for chunk in table.iter_chunks(chunk_rows):
            writer.append(chunk)
        writer.finalize(n_rows=table.n_rows)
    return Path(path)


def spill_table(
    table: Table, path: str | Path, chunk_rows: int | None = None
) -> Table:
    """Write ``table`` to a store and hand back the loaded (mapped) table."""
    save_columnar(table, path, chunk_rows)
    return load_columnar(path)


# -- loading ----------------------------------------------------------------

#: manifest realpath -> (mtime_ns, parsed manifest)
_MANIFEST_CACHE: dict[str, tuple[int, dict]] = {}

#: (store realpath, manifest mtime_ns, column name, verified-variant) ->
#: buffer or lazy cell.  Shared process-wide so that unpickling many
#: views of one store opens each memmap once; the mtime in the key
#: invalidates rewritten stores, and the variant flag keeps verified
#: and unverified cells apart when the mode is toggled mid-process.
_BUFFER_CACHE: dict[tuple[str, int, str, bool], object] = {}

#: (store realpath, manifest mtime_ns, column name) whose payload
#: digest this process has already verified — each generation of each
#: column is hashed at most once per process
_VERIFIED: set[tuple[str, int, str]] = set()

#: store realpath -> highest generation this process has seen; lets a
#: rebuild bump the generation even when the manifest is unreadable
_GENERATION_HINTS: dict[str, int] = {}

#: metrics hook, push-installed by :func:`repro.core.observability.install`
_metrics = None


def _next_generation(path: Path) -> int:
    real = os.path.realpath(path)
    known = _GENERATION_HINTS.get(real, 0)
    try:
        _, manifest = _read_manifest(Path(path))
        known = max(known, int(manifest.get("generation", 1)))
    except (StoreCorruptionError, OSError, ValueError):
        pass
    return known + 1


def _read_manifest(path: Path) -> tuple[int, dict]:
    manifest_path = path / MANIFEST_NAME
    real = os.path.realpath(manifest_path)
    try:
        mtime = os.stat(real).st_mtime_ns
    except FileNotFoundError:
        raise StoreCorruptionError(
            MISSING_MANIFEST, path, detail="manifest.json does not exist"
        ) from None
    cached = _MANIFEST_CACHE.get(real)
    if cached is None or cached[0] != mtime:
        try:
            with open(manifest_path) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StoreCorruptionError(
                MISSING_MANIFEST, path, detail="manifest.json does not exist"
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StoreCorruptionError(
                TORN_MANIFEST, path, detail=str(error)
            ) from None
        version = manifest.get("format")
        if version not in SUPPORTED_STORE_FORMATS:
            raise StoreCorruptionError(
                VERSION_SKEW,
                path,
                detail=f"unsupported columnar store format {version!r}",
            )
        cached = (mtime, manifest)
        _MANIFEST_CACHE[real] = cached
        store_real = os.path.realpath(path)
        generation = int(manifest.get("generation", 1))
        if generation > _GENERATION_HINTS.get(store_real, 0):
            _GENERATION_HINTS[store_real] = generation
    return cached


def store_info(path: str | Path) -> dict:
    """Inspect a store's integrity metadata without opening buffers.

    Returns ``{"format", "generation", "n_rows", "verifiable"}`` —
    ``verifiable`` is ``False`` for format-1 stores, which still load
    but carry no digests to check against.
    """
    _, manifest = _read_manifest(Path(path))
    columns = manifest.get("columns", [])
    verifiable = int(manifest.get("format", 1)) >= 2 and all(
        "sha256" in entry for entry in columns
    )
    return {
        "format": int(manifest.get("format", 1)),
        "generation": int(manifest.get("generation", 1)),
        "n_rows": int(manifest["n_rows"]),
        "verifiable": verifiable,
    }


def _schema_from_manifest(manifest: dict) -> Schema:
    specs = tuple(
        ColumnSpec(entry["name"], ColumnType(entry["type"]))
        for entry in manifest["columns"]
    )
    return Schema(
        columns=specs,
        label=manifest["label"],
        keys=tuple(manifest["keys"]),
        hidden=tuple(manifest["hidden"]),
    )


def _decode_codes(codes: np.ndarray, dictionary: tuple[str, ...]) -> np.ndarray:
    """int32 codes -> object-of-str buffer (``-1`` decodes to ``None``)."""
    lookup = np.empty(len(dictionary) + 1, dtype=object)
    for code, value in enumerate(dictionary):
        lookup[code] = value
    lookup[-1] = None  # _MISSING_CODE indexes here from the end
    return lookup[codes]


# -- integrity checks -------------------------------------------------------


def _check_entry_shape(store: Path, entry: dict, n_rows: int) -> None:
    """Structural check: the column file exists with the exact size."""
    name = entry["name"]
    file = store / entry["file"]
    try:
        size = os.stat(file).st_size
    except FileNotFoundError:
        raise StoreCorruptionError(
            MISSING_COLUMN,
            store,
            name,
            detail=f"column file {entry['file']} is missing",
        ) from None
    expected = entry.get("n_bytes")
    if expected is None:  # format-1 manifests carry no byte length
        itemsize = 8 if entry["type"] == ColumnType.NUMERIC.value else 4
        expected = n_rows * itemsize
    if size != _HEADER_SIZE + expected:
        raise StoreCorruptionError(
            TRUNCATED_COLUMN,
            store,
            name,
            detail=f"{size} bytes on disk, expected {_HEADER_SIZE + expected}",
        )


def _check_entry_digest(
    store: Path,
    mtime: int,
    entry: dict,
    *,
    use_cache: bool = True,
    fire_hook: bool = True,
) -> None:
    """Stream the column payload and compare against the manifest sha256.

    Reads through regular file I/O, never through a map, so a short
    file raises cleanly instead of delivering ``SIGBUS`` mid-study.
    Verified ``(store, generation, column)`` triples are memoized per
    process.
    """
    digest = entry.get("sha256")
    if digest is None:  # format-1 entry: nothing to verify against
        return
    name = entry["name"]
    key = (os.path.realpath(store), mtime, name)
    if use_cache and key in _VERIFIED:
        if _metrics is not None:
            _metrics.count("store.digest_memo_hits")
        return
    if fire_hook:
        _fire_io_fault("read", store)
    sha256 = hashlib.sha256()
    try:
        with open(store / entry["file"], "rb") as handle:
            handle.seek(_HEADER_SIZE)
            while True:
                block = handle.read(1 << 20)
                if not block:
                    break
                sha256.update(block)
    except FileNotFoundError:
        raise StoreCorruptionError(
            MISSING_COLUMN,
            store,
            name,
            detail=f"column file {entry['file']} is missing",
        ) from None
    if sha256.hexdigest() != digest:
        if _metrics is not None:
            _metrics.count("store.digest_failures")
        raise StoreCorruptionError(
            DIGEST_MISMATCH,
            store,
            name,
            detail="content digest does not match manifest sha256",
        )
    if _metrics is not None:
        _metrics.count("store.digest_verifications")
        _metrics.count("store.bytes_verified", int(entry.get("n_bytes", 0)))
    _VERIFIED.add(key)


def _load_npy(store: Path, entry: dict, n_rows: int, *, mmap: bool):
    """np.load with npy-header failures mapped into the taxonomy."""
    name = entry["name"]
    try:
        array = np.load(store / entry["file"], mmap_mode="r" if mmap else None)
    except FileNotFoundError:
        raise StoreCorruptionError(
            MISSING_COLUMN,
            store,
            name,
            detail=f"column file {entry['file']} is missing",
        ) from None
    except ValueError as error:
        raise StoreCorruptionError(
            HEADER_MISMATCH, store, name, detail=str(error)
        ) from None
    if array.ndim != 1 or len(array) != n_rows:
        raise StoreCorruptionError(
            HEADER_MISMATCH,
            store,
            name,
            detail=f"header shape {array.shape} for {n_rows} manifest rows",
        )
    return array


def _open_buffer(store: Path, mtime: int, entry: dict, n_rows: int):
    """The shared buffer (or lazy cell) for one column of a store."""
    verify = (
        _VERIFY_MODE != "off" and "sha256" in entry and n_rows > 0
    )
    key = (os.path.realpath(store), mtime, entry["name"], verify)
    buffer = _BUFFER_CACHE.get(key)
    if buffer is None:
        file = store / entry["file"]
        if entry["type"] == ColumnType.NUMERIC.value:
            if n_rows == 0:
                # zero-length arrays cannot memory-map; a resident empty
                # array is an exact stand-in
                buffer = np.load(file)
                buffer.setflags(write=False)
            elif verify:

                def loader(store=store, mtime=mtime, entry=entry, n_rows=n_rows):
                    _check_entry_shape(store, entry, n_rows)
                    _check_entry_digest(store, mtime, entry)
                    return _load_npy(store, entry, n_rows, mmap=True)

                buffer = _LazyBuffer(loader, n_rows)
            else:
                buffer = np.load(file, mmap_mode="r")
                buffer.setflags(write=False)
        else:
            dictionary = tuple(entry.get("dictionary", ()))

            def loader(
                store=store,
                mtime=mtime,
                entry=entry,
                dictionary=dictionary,
                n_rows=n_rows,
                verify=verify,
            ):
                if verify:
                    _check_entry_shape(store, entry, n_rows)
                    _check_entry_digest(store, mtime, entry)
                codes = _load_npy(store, entry, n_rows, mmap=bool(n_rows))
                return _decode_codes(codes, dictionary)

            buffer = _LazyBuffer(loader, n_rows)
        _BUFFER_CACHE[key] = buffer
    return buffer


def load_columnar(path: str | Path) -> Table:
    """Load a store written by :class:`ColumnarWriter`/:func:`save_columnar`.

    With streaming enabled the returned table is **file-backed**:
    numeric buffers are read-only memmaps, categorical buffers decode
    lazily, and pickling ships store paths instead of data.  Under
    :func:`table_streaming_disabled` every column materializes into an
    ordinary resident array instead (the eager reference behavior).

    Unless verification is off, the manifest's shape/byte-length claims
    are checked eagerly here; content digests are checked lazily on
    first materialization (``"lazy"``) or up front (``"eager"``).
    """
    path = Path(path)
    mtime, manifest = _read_manifest(path)
    schema = _schema_from_manifest(manifest)
    n_rows = int(manifest["n_rows"])
    if _STREAMING_ENABLED and _VERIFY_MODE != "off":
        for entry in manifest["columns"]:
            _check_entry_shape(path, entry, n_rows)
            if _VERIFY_MODE == "eager":
                _check_entry_digest(path, mtime, entry)
    columns: dict[str, Column] = {}
    for entry in manifest["columns"]:
        name = entry["name"]
        ctype = ColumnType(entry["type"])
        if not _STREAMING_ENABLED:
            columns[name] = _load_column_eager(path, entry)
            continue
        source = (str(path), name)
        buffer = _open_buffer(path, mtime, entry, n_rows)
        if isinstance(buffer, _LazyBuffer):
            columns[name] = Column.from_lazy(buffer, ctype, source=source)
        else:
            columns[name] = Column.from_buffer(buffer, ctype, source=source)
    return Table(schema, columns, n_rows=n_rows)


def _load_column_eager(store: Path, entry: dict) -> Column:
    """Reference load: fully resident, never mapped, no provenance."""
    ctype = ColumnType(entry["type"])
    raw = np.load(store / entry["file"])
    if ctype is ColumnType.NUMERIC:
        return Column.from_buffer(raw.astype(np.float64, copy=False), ctype)
    decoded = _decode_codes(raw, tuple(entry.get("dictionary", ())))
    return Column.from_buffer(decoded, ctype)


def _corruption_placeholder(error: StoreCorruptionError, n_rows: int) -> _LazyBuffer:
    """A lazy cell that re-raises ``error`` on every materialization.

    Installed by :func:`attach_source` when the store is already
    corrupt at unpickle time (e.g. a torn manifest): the worker must
    not die in the pool initializer — the unit that touches the data
    fails instead, which is what routes the error into the supervisor's
    recovery ladder.
    """

    def loader():
        raise error

    return _LazyBuffer(loader, n_rows)


def attach_source(
    column: Column, source: tuple[str, str], n_rows: int | None = None
) -> None:
    """Re-bind an unpickled file-backed column to its local store.

    Called from ``Column.__setstate__``: the pickle carried only
    ``(store directory, column name)`` plus view indices and the base
    row count, so the receiving process opens (or re-uses, via the
    process-wide cache) the memmap/lazy cell itself.  When the store is
    corrupt and ``n_rows`` is known, a placeholder cell defers the
    :class:`StoreCorruptionError` to first materialization.
    """
    store = Path(source[0])
    try:
        mtime, manifest = _read_manifest(store)
        entries = {entry["name"]: entry for entry in manifest["columns"]}
        entry = entries.get(source[1])
        if entry is None:
            raise StoreCorruptionError(
                MISSING_COLUMN,
                store,
                source[1],
                detail="column is not in the store manifest",
            )
    except StoreCorruptionError as error:
        if n_rows is None:
            raise
        column._buffer = None
        column._lazy = _corruption_placeholder(error, n_rows)
        column._source = source
        return
    buffer = _open_buffer(store, mtime, entry, int(manifest["n_rows"]))
    if isinstance(buffer, _LazyBuffer):
        column._buffer = None
        column._lazy = buffer
    else:
        column._buffer = buffer
        column._lazy = None
    column._source = source


# -- recovery ---------------------------------------------------------------


@dataclass(frozen=True)
class StoreSource:
    """How to regenerate a store: a rebuild closure and/or an eager load.

    ``rebuild(path)`` rewrites the store directory from the recorded
    origin (re-spill from CSV, re-save from a resident table) under a
    bumped generation; ``eager()`` returns the fully-resident table for
    the degrade rung of the recovery ladder.
    """

    rebuild: Callable[[Path], None] | None = None
    eager: Callable[[], Table] | None = None


#: store realpath -> in-process recovery source (registered at spill time)
_STORE_SOURCES: dict[str, StoreSource] = {}


def register_store_source(
    path: str | Path,
    *,
    rebuild: Callable[[Path], None] | None = None,
    eager: Callable[[], Table] | None = None,
) -> None:
    """Record how the store at ``path`` can be regenerated after corruption."""
    _STORE_SOURCES[os.path.realpath(path)] = StoreSource(rebuild=rebuild, eager=eager)


def store_source(path: str | Path) -> StoreSource | None:
    """The recovery source for a store, if any.

    In-process registrations (``register_store_source``) win; otherwise
    a ``source`` record in the manifest (written by
    ``read_csv(..., spill=...)``) yields a CSV re-spill source that
    works across processes and sessions.
    """
    real = os.path.realpath(path)
    registered = _STORE_SOURCES.get(real)
    if registered is not None:
        return registered
    try:
        _, manifest = _read_manifest(Path(path))
    except StoreCorruptionError:
        return None
    spec = manifest.get("source")
    if (
        isinstance(spec, dict)
        and spec.get("kind") == "csv"
        and os.path.exists(str(spec.get("path", "")))
    ):
        csv_path = str(spec["path"])
        chunk_rows = spec.get("chunk_rows")

        def rebuild(target: Path, csv_path=csv_path, chunk_rows=chunk_rows) -> None:
            from .io import read_csv

            read_csv(csv_path, chunk_rows=chunk_rows, spill=target)

        def eager(csv_path=csv_path, chunk_rows=chunk_rows) -> Table:
            from .io import read_csv

            with table_streaming_disabled():
                return read_csv(csv_path, chunk_rows=chunk_rows)

        return StoreSource(rebuild=rebuild, eager=eager)
    return None


def diagnose_store(path: str | Path) -> StoreCorruptionError | None:
    """Full eager integrity check; the error found, or ``None`` if clean.

    Re-hashes every column (ignoring the per-process verified memo) so
    a just-rebuilt store is genuinely re-checked, and skips the
    injected-fault hook — the doctor must not catch the disease.
    """
    path = Path(path)
    try:
        mtime, manifest = _read_manifest(path)
        n_rows = int(manifest["n_rows"])
        for entry in manifest["columns"]:
            _check_entry_shape(path, entry, n_rows)
            _check_entry_digest(
                path, mtime, entry, use_cache=False, fire_hook=False
            )
    except StoreCorruptionError as error:
        return error
    return None


def recover_store(path: str | Path) -> tuple[str, Table | None]:
    """Heal a corrupt store; ``(action, eager_table_or_None)``.

    The ladder (each rung only if the previous is unavailable/failed):

    * ``"clean"`` — re-diagnosis found nothing wrong (a sibling unit's
      recovery already healed it); retry as-is.
    * ``"rebuilt"`` — the recorded source re-wrote the store under a
      new generation and it now verifies end to end.
    * ``"degraded"`` — rebuild unavailable or failed; the returned
      fully-resident table replaces the mapped one.
    * ``"unrecoverable"`` — no source; the caller falls through to the
      supervisor's quarantine machinery.
    """
    path = Path(path)
    if diagnose_store(path) is None:
        return ("clean", None)
    source = store_source(path)
    if source is None:
        return ("unrecoverable", None)
    if source.rebuild is not None:
        try:
            source.rebuild(path)
        except (OSError, StoreCorruptionError, ValueError):
            pass
        else:
            if diagnose_store(path) is None:
                return ("rebuilt", None)
    if source.eager is not None:
        try:
            return ("degraded", source.eager())
        except (OSError, StoreCorruptionError, ValueError):
            pass
    return ("unrecoverable", None)


def table_store_path(table: Table) -> str | None:
    """The store directory backing ``table``'s columns, if file-backed."""
    for name in table.schema.names:
        source = table.column(name)._source
        if source is not None:
            return source[0]
    return None
