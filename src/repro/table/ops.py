"""Relational helpers over :class:`~repro.table.Table`.

Small, composable operations the cleaning algorithms and dataset
generators share: filtering, group counting, sorting, and per-column
summaries.  Anything needing only one column lives on :class:`Column`;
anything spanning rows or multiple columns lives here.
"""

from __future__ import annotations

from collections import Counter, defaultdict

import numpy as np

from .schema import ColumnType
from .table import Table


def filter_rows(table: Table, predicate) -> Table:
    """Rows for which ``predicate(row_dict)`` is truthy."""
    keep = np.array(
        [bool(predicate(table.row(i))) for i in range(table.n_rows)], dtype=bool
    )
    return table.mask(keep)


def sort_by(table: Table, name: str, descending: bool = False) -> Table:
    """Stable sort by one column; missing values sort last."""
    column = table.column(name)
    missing = column.missing_mask()
    if column.is_numeric:
        sort_keys = column.values.copy()
        sort_keys[missing] = np.inf if not descending else -np.inf
        order = np.argsort(sort_keys, kind="stable")
    else:
        decorated = [
            (missing[i], "" if missing[i] else str(column.values[i]), i)
            for i in range(len(column))
        ]
        decorated.sort(key=lambda t: (t[0], t[1]), reverse=descending)
        order = np.array([t[2] for t in decorated], dtype=int)
    if descending and column.is_numeric:
        order = order[::-1]
        # keep missing rows last after the reversal
        order = np.concatenate([order[~missing[order]], order[missing[order]]])
    return table.take(order)


def group_sizes(table: Table, names: list[str]) -> dict[tuple, int]:
    """Count rows per distinct combination of the given columns."""
    counts: Counter = Counter()
    for i in range(table.n_rows):
        key = tuple(_cell_key(table, name, i) for name in names)
        counts[key] += 1
    return dict(counts)


def group_indices(table: Table, names: list[str]) -> dict[tuple, list[int]]:
    """Row indices per distinct combination of the given columns."""
    groups: dict[tuple, list[int]] = defaultdict(list)
    for i in range(table.n_rows):
        key = tuple(_cell_key(table, name, i) for name in names)
        groups[key].append(i)
    return dict(groups)


def class_distribution(table: Table) -> dict:
    """Label value -> proportion, for labeled tables."""
    counts = table.column(table.schema.label).value_counts()
    total = sum(counts.values())
    return {value: count / total for value, count in counts.items()}


def majority_class(table: Table):
    """The most frequent label value."""
    return table.column(table.schema.label).mode()


def minority_class(table: Table):
    """The least frequent label value (ties broken alphabetically)."""
    counts = table.column(table.schema.label).value_counts()
    return min(counts.items(), key=lambda kv: (kv[1], str(kv[0])))[0]


def is_imbalanced(table: Table, threshold: float = 0.65) -> bool:
    """True when the majority class exceeds ``threshold`` of the rows.

    The paper switches from accuracy to F1 for class-imbalanced datasets
    (e.g. Credit); this predicate drives that switch.
    """
    distribution = class_distribution(table)
    return max(distribution.values()) > threshold


def summarize(table: Table) -> dict[str, dict]:
    """Per-column summary used by dataset descriptions and examples."""
    out: dict[str, dict] = {}
    for spec in table.schema.columns:
        column = table.column(spec.name)
        info: dict = {
            "type": spec.ctype.value,
            "missing": column.n_missing(),
        }
        if spec.ctype is ColumnType.NUMERIC and len(column.present_values()):
            info.update(
                mean=column.mean(),
                std=column.std(),
                min=float(np.min(column.present_values())),
                max=float(np.max(column.present_values())),
            )
        elif spec.ctype is ColumnType.CATEGORICAL:
            info["n_unique"] = len(column.unique())
        out[spec.name] = info
    return out


def _cell_key(table: Table, name: str, index: int):
    value = table.column(name).values[index]
    if isinstance(value, float) and np.isnan(value):
        return None
    return value
