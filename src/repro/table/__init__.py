"""Tabular substrate: typed columns, tables, splits, encoding, CSV I/O."""

from .column import Column, table_views_disabled, table_views_enabled
from .encode import FeatureEncoder, LabelEncoder, encode_pair
from .io import read_csv, write_csv
from .ops import (
    class_distribution,
    filter_rows,
    group_indices,
    group_sizes,
    is_imbalanced,
    majority_class,
    minority_class,
    sort_by,
    summarize,
)
from .schema import ColumnSpec, ColumnType, Schema, make_schema
from .split import (
    kfold_indices,
    split_indices,
    stratified_split_indices,
    train_test_split,
)
from .table import Table

__all__ = [
    "Column",
    "ColumnSpec",
    "ColumnType",
    "FeatureEncoder",
    "LabelEncoder",
    "Schema",
    "Table",
    "class_distribution",
    "encode_pair",
    "filter_rows",
    "group_indices",
    "group_sizes",
    "is_imbalanced",
    "kfold_indices",
    "majority_class",
    "make_schema",
    "minority_class",
    "read_csv",
    "sort_by",
    "split_indices",
    "stratified_split_indices",
    "summarize",
    "table_views_disabled",
    "table_views_enabled",
    "train_test_split",
    "write_csv",
]
