"""Tabular substrate: typed columns, tables, splits, encoding, CSV I/O."""

from .column import Column, table_views_disabled, table_views_enabled
from .encode import FeatureEncoder, LabelEncoder, encode_pair
from .io import read_csv, stream_csv, write_csv
from .store import (
    DEFAULT_CHUNK_ROWS,
    ColumnarWriter,
    load_columnar,
    save_columnar,
    spill_table,
    table_streaming_disabled,
    table_streaming_enabled,
)
from .ops import (
    class_distribution,
    filter_rows,
    group_indices,
    group_sizes,
    is_imbalanced,
    majority_class,
    minority_class,
    sort_by,
    summarize,
)
from .schema import ColumnSpec, ColumnType, Schema, make_schema
from .split import (
    kfold_indices,
    split_indices,
    stratified_split_indices,
    train_test_split,
)
from .table import Table

__all__ = [
    "Column",
    "ColumnSpec",
    "ColumnType",
    "ColumnarWriter",
    "DEFAULT_CHUNK_ROWS",
    "FeatureEncoder",
    "LabelEncoder",
    "Schema",
    "Table",
    "class_distribution",
    "encode_pair",
    "filter_rows",
    "group_indices",
    "group_sizes",
    "is_imbalanced",
    "kfold_indices",
    "majority_class",
    "load_columnar",
    "make_schema",
    "minority_class",
    "read_csv",
    "save_columnar",
    "sort_by",
    "spill_table",
    "split_indices",
    "stratified_split_indices",
    "stream_csv",
    "summarize",
    "table_streaming_disabled",
    "table_streaming_enabled",
    "table_views_disabled",
    "table_views_enabled",
    "train_test_split",
    "write_csv",
]
