"""CSV persistence for :class:`~repro.table.Table`.

Datasets and cleaned variants can be written to / read from disk so that
study runs are inspectable and the library interoperates with external
tools.  Types are carried in the header as ``name:type`` suffixes so a
round trip preserves the schema exactly.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .column import Column
from .schema import ColumnSpec, ColumnType, Schema
from .table import Table

_MISSING_TOKEN = ""


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a typed header.

    Header cells look like ``age:numeric`` or ``city:categorical``; the
    label column gets a ``!label`` suffix and key columns ``!key`` so that
    :func:`read_csv` can reconstruct the full schema.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = []
    for spec in table.schema.columns:
        cell = f"{spec.name}:{spec.ctype.value}"
        if spec.name == table.schema.label:
            cell += "!label"
        if spec.name in table.schema.keys:
            cell += "!key"
        if spec.name in table.schema.hidden:
            cell += "!hidden"
        header.append(cell)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(table.n_rows):
            row = []
            for spec in table.schema.columns:
                value = table.column(spec.name).values[i]
                row.append(_format_cell(value))
            writer.writerow(row)


def read_csv(path: str | Path) -> Table:
    """Read a table previously written by :func:`write_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        raw_rows = list(reader)

    specs: list[ColumnSpec] = []
    label: str | None = None
    keys: list[str] = []
    hidden: list[str] = []
    for cell in header:
        name, ctype, is_label, is_key, is_hidden = _parse_header_cell(cell)
        specs.append(ColumnSpec(name, ctype))
        if is_label:
            label = name
        if is_key:
            keys.append(name)
        if is_hidden:
            hidden.append(name)
    schema = Schema(
        columns=tuple(specs), label=label, keys=tuple(keys), hidden=tuple(hidden)
    )

    data: dict[str, list] = {spec.name: [] for spec in specs}
    for raw in raw_rows:
        if len(raw) != len(specs):
            raise ValueError(
                f"row has {len(raw)} cells, expected {len(specs)}: {raw!r}"
            )
        for spec, cell in zip(specs, raw):
            data[spec.name].append(_parse_cell(cell, spec.ctype))
    return Table.from_dict(schema, data)


def _format_cell(value) -> str:
    if value is None:
        return _MISSING_TOKEN
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return _MISSING_TOKEN
        return repr(float(value))
    return str(value)


def _parse_cell(cell: str, ctype: ColumnType):
    if cell == _MISSING_TOKEN:
        return None
    if ctype is ColumnType.NUMERIC:
        return float(cell)
    return cell


def _parse_header_cell(cell: str) -> tuple[str, ColumnType, bool, bool, bool]:
    is_label = "!label" in cell
    is_key = "!key" in cell
    is_hidden = "!hidden" in cell
    base = cell.replace("!label", "").replace("!key", "").replace("!hidden", "")
    if ":" not in base:
        raise ValueError(f"header cell {cell!r} lacks a ':type' suffix")
    name, _, type_name = base.rpartition(":")
    try:
        ctype = ColumnType(type_name)
    except ValueError:
        raise ValueError(f"unknown column type {type_name!r} in {cell!r}") from None
    return name, ctype, is_label, is_key, is_hidden
