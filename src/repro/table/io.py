"""CSV persistence for :class:`~repro.table.Table`.

Datasets and cleaned variants can be written to / read from disk so that
study runs are inspectable and the library interoperates with external
tools.  Types are carried in the header as ``name:type`` suffixes so a
round trip preserves the schema exactly.

Ingestion is **column-major and chunk-streamed**: :func:`stream_csv`
yields fixed-size row chunks parsed straight into typed column buffers
(one ``np.fromiter`` per numeric column, one object buffer per
categorical column — no row-major Python list of lists is ever built),
and :func:`read_csv` either concatenates the chunks or, given
``spill=``, forwards them to a :class:`~repro.table.store.ColumnarWriter`
and returns the memory-mapped table, so ingesting a
larger-than-memory CSV peaks at one chunk of residency.  Writing is
vectorized the same way: each column is formatted once, rows go out via
``writer.writerows``.

The historical row-major reader/writer survive as
:func:`_read_csv_reference` / :func:`_write_csv_reference` — the
executable reference paths that
:func:`~repro.table.store.table_streaming_disabled` switches back in,
following the repo-wide kernel pattern.
"""

from __future__ import annotations

import csv
from itertools import islice
from pathlib import Path

import numpy as np

from .column import Column
from .schema import ColumnSpec, ColumnType, Schema
from .store import (
    ColumnarWriter,
    DEFAULT_CHUNK_ROWS,
    load_columnar,
    table_streaming_enabled,
)
from .table import Table

_MISSING_TOKEN = ""

#: header flag tokens, in the order write_csv appends them
_HEADER_FLAGS = ("!label", "!key", "!hidden")

_NAN = float("nan")


# -- writing ----------------------------------------------------------------


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` with a typed header.

    Header cells look like ``age:numeric`` or ``city:categorical``; the
    label column gets a ``!label`` suffix, key columns ``!key`` and
    hidden columns ``!hidden`` so that :func:`read_csv` can reconstruct
    the full schema.  Formats column-major (one pass per column, rows
    written via ``writerows``); byte-identical to the per-cell
    reference path.
    """
    if not table_streaming_enabled():
        return _write_csv_reference(table, path)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns_text: list[list[str]] = []
    for spec in table.schema.columns:
        values = table.column(spec.name).values
        if spec.is_numeric:
            text = [
                _MISSING_TOKEN if value != value else repr(value)
                for value in values.tolist()
            ]
        else:
            text = [
                _MISSING_TOKEN if value is None else str(value)
                for value in values.tolist()
            ]
        columns_text.append(text)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_header_cells(table.schema))
        if columns_text:
            writer.writerows(zip(*columns_text))
        else:
            writer.writerows([] for _ in range(table.n_rows))


def _write_csv_reference(table: Table, path: str | Path) -> None:
    """The pre-streaming per-cell writer — kept as the executable spec."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_header_cells(table.schema))
        for i in range(table.n_rows):
            row = []
            for spec in table.schema.columns:
                value = table.column(spec.name).values[i]
                row.append(_format_cell(value))
            writer.writerow(row)


def _header_cells(schema: Schema) -> list[str]:
    header = []
    for spec in schema.columns:
        cell = f"{spec.name}:{spec.ctype.value}"
        if spec.name == schema.label:
            cell += "!label"
        if spec.name in schema.keys:
            cell += "!key"
        if spec.name in schema.hidden:
            cell += "!hidden"
        header.append(cell)
    return header


# -- reading ----------------------------------------------------------------


def read_csv(
    path: str | Path,
    *,
    chunk_rows: int | None = None,
    spill: str | Path | None = None,
) -> Table:
    """Read a table previously written by :func:`write_csv`.

    Parses chunk-streamed and column-major (see :func:`stream_csv`).
    With ``spill=`` the chunks stream into a columnar store at that
    directory and the returned table is memory-mapped — the whole CSV
    is never resident at once.  Under
    :func:`~repro.table.store.table_streaming_disabled` the historical
    row-major reference parser runs instead and ``spill`` is ignored.
    """
    if not table_streaming_enabled():
        return _read_csv_reference(path)
    chunks = stream_csv(path, chunk_rows or DEFAULT_CHUNK_ROWS)
    if spill is not None:
        # the manifest records the CSV origin so recover_store can
        # re-spill the store after on-disk corruption, even from a
        # process that never saw this call
        source = {
            "kind": "csv",
            "path": str(Path(path).resolve()),
            "chunk_rows": chunk_rows or DEFAULT_CHUNK_ROWS,
        }
        first = next(chunks)
        with ColumnarWriter(spill, first.schema, source=source) as writer:
            writer.append(first)
            for chunk in chunks:
                writer.append(chunk)
            writer.finalize()
        return load_columnar(spill)

    first = next(chunks)
    parts: dict[str, list[np.ndarray]] = {
        name: [first.column(name).base_buffer] for name in first.schema.names
    }
    n_rows = first.n_rows
    for chunk in chunks:
        n_rows += chunk.n_rows
        for name in first.schema.names:
            parts[name].append(chunk.column(name).base_buffer)
    columns = {
        spec.name: Column.from_buffer(
            buffers[0] if len(buffers) == 1 else np.concatenate(buffers),
            spec.ctype,
        )
        for spec, buffers in zip(first.schema.columns, parts.values())
    }
    return Table(first.schema, columns, n_rows=n_rows)


def stream_csv(path: str | Path, chunk_rows: int = DEFAULT_CHUNK_ROWS):
    """Yield ``Table`` chunks of at most ``chunk_rows`` rows from a CSV.

    Each chunk is parsed column-major into typed buffers; at least one
    chunk is always yielded (a header-only file produces one zero-row
    chunk), so consumers can recover the schema without special cases.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        schema = _schema_from_header(header)
        emitted = False
        while True:
            rows = list(islice(reader, chunk_rows))
            if rows or not emitted:
                yield _typed_chunk(schema, rows)
                emitted = True
            if len(rows) < chunk_rows:
                break


def _typed_chunk(schema: Schema, rows: list[list[str]]) -> Table:
    """Parse raw csv rows into a chunk table, column-major."""
    specs = schema.columns
    n_cols = len(specs)
    for raw in rows:
        if len(raw) != n_cols:
            raise ValueError(
                f"row has {len(raw)} cells, expected {n_cols}: {raw!r}"
            )
    n_rows = len(rows)
    columns: dict[str, Column] = {}
    for j, spec in enumerate(specs):
        if spec.is_numeric:
            # float() (not np.float64's parser) keeps cell-level parse
            # semantics identical to the reference path
            buffer = np.fromiter(
                (_NAN if not row[j] else float(row[j]) for row in rows),
                dtype=np.float64,
                count=n_rows,
            )
        else:
            buffer = np.empty(n_rows, dtype=object)
            for i, row in enumerate(rows):
                cell = row[j]
                buffer[i] = cell if cell else None
        columns[spec.name] = Column.from_buffer(buffer, spec.ctype)
    return Table(schema, columns, n_rows=n_rows)


def _read_csv_reference(path: str | Path) -> Table:
    """The pre-streaming row-major reader — kept as the executable spec."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        raw_rows = list(reader)

    schema = _schema_from_header(header)
    specs = schema.columns
    data: dict[str, list] = {spec.name: [] for spec in specs}
    for raw in raw_rows:
        if len(raw) != len(specs):
            raise ValueError(
                f"row has {len(raw)} cells, expected {len(specs)}: {raw!r}"
            )
        for spec, cell in zip(specs, raw):
            data[spec.name].append(_parse_cell(cell, spec.ctype))
    return Table.from_dict(schema, data)


def _schema_from_header(header: list[str]) -> Schema:
    specs: list[ColumnSpec] = []
    label: str | None = None
    keys: list[str] = []
    hidden: list[str] = []
    for cell in header:
        name, ctype, is_label, is_key, is_hidden = _parse_header_cell(cell)
        specs.append(ColumnSpec(name, ctype))
        if is_label:
            label = name
        if is_key:
            keys.append(name)
        if is_hidden:
            hidden.append(name)
    return Schema(
        columns=tuple(specs), label=label, keys=tuple(keys), hidden=tuple(hidden)
    )


def _format_cell(value) -> str:
    if value is None:
        return _MISSING_TOKEN
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return _MISSING_TOKEN
        return repr(float(value))
    return str(value)


def _parse_cell(cell: str, ctype: ColumnType):
    if cell == _MISSING_TOKEN:
        return None
    if ctype is ColumnType.NUMERIC:
        return float(cell)
    return cell


def _parse_header_cell(cell: str) -> tuple[str, ColumnType, bool, bool, bool]:
    """Parse ``name:type[!label][!key][!hidden]``.

    Flags are *ordered suffix tokens*, stripped from the end — a column
    whose name merely contains ``!label``/``!key``/``!hidden`` as a
    substring (e.g. ``risk!label_raw``) round-trips intact.
    """
    base = cell
    flags = {flag: False for flag in _HEADER_FLAGS}
    stripped = True
    while stripped:
        stripped = False
        for flag in _HEADER_FLAGS:
            if base.endswith(flag) and not flags[flag]:
                base = base[: -len(flag)]
                flags[flag] = True
                stripped = True
    if ":" not in base:
        raise ValueError(f"header cell {cell!r} lacks a ':type' suffix")
    name, _, type_name = base.rpartition(":")
    try:
        ctype = ColumnType(type_name)
    except ValueError:
        raise ValueError(f"unknown column type {type_name!r} in {cell!r}") from None
    return name, ctype, flags["!label"], flags["!key"], flags["!hidden"]
