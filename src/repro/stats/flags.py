"""Three-valued flag logic (paper §IV-B) with FDR-adjusted decisions.

A flag summarizes cleaning impact: **P** (positive), **N** (negative) or
**S** (insignificant).  Per the paper:

* p0 >= alpha                -> S
* p0 < alpha and p1 < alpha  -> P  (two-tailed significant, mean > 0)
* p0 < alpha and p2 < alpha  -> N  (two-tailed significant, mean < 0)

When the BY procedure runs first, "< alpha" is replaced by "rejected by
the procedure", which :func:`flags_with_fdr` handles for a whole batch of
experiments at once (all 3m p-values of a relation enter one procedure,
matching the paper counting 3x the key assignments as hypotheses).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .fdr import reject
from .ttest import PairedTTestResult


class Flag(Enum):
    """Cleaning impact on the downstream model."""

    POSITIVE = "P"
    NEGATIVE = "N"
    INSIGNIFICANT = "S"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def decide_flag(
    result: PairedTTestResult, alpha: float = 0.05
) -> Flag:
    """Uncorrected flag decision straight from the three p-values."""
    return _decide(
        result.p_two_sided < alpha,
        result.p_upper < alpha,
        result.p_lower < alpha,
    )


def flags_with_fdr(
    results: list[PairedTTestResult],
    alpha: float = 0.05,
    procedure: str = "by",
) -> list[Flag]:
    """Flags for a whole relation with one FDR procedure over all tests.

    All three p-values of every experiment enter a single correction (3m
    hypotheses for m experiments), then each experiment's flag is decided
    from its three adjusted significance verdicts.
    """
    if not results:
        return []
    pvalues = np.array(
        [
            p
            for result in results
            for p in (result.p_two_sided, result.p_upper, result.p_lower)
        ]
    )
    rejected = reject(pvalues, alpha=alpha, procedure=procedure)
    flags = []
    for i in range(len(results)):
        two, upper, lower = rejected[3 * i : 3 * i + 3]
        flags.append(_decide(bool(two), bool(upper), bool(lower)))
    return flags


def _decide(two_sided: bool, upper: bool, lower: bool) -> Flag:
    if not two_sided:
        return Flag.INSIGNIFICANT
    if upper:
        return Flag.POSITIVE
    if lower:
        return Flag.NEGATIVE
    return Flag.INSIGNIFICANT


def flag_distribution(flags: list[Flag]) -> dict[str, int]:
    """Counts per flag value, in P/S/N order (paper table order)."""
    return {
        "P": sum(flag is Flag.POSITIVE for flag in flags),
        "S": sum(flag is Flag.INSIGNIFICANT for flag in flags),
        "N": sum(flag is Flag.NEGATIVE for flag in flags),
    }
