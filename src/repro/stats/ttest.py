"""Paired-sample t-tests (paper §IV-B).

The paper decides every flag with *three* paired t-tests over the 20
metric pairs: two-tailed (H0: mean difference = 0), upper-tailed
(H0: mu <= 0) and lower-tailed (H0: mu >= 0).  The statistic is computed
here from first principles; the Student-t survival function comes from
scipy's incomplete-beta implementation (validated against
``scipy.stats.ttest_rel`` in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

_EPS = 1e-12


@dataclass(frozen=True)
class PairedTTestResult:
    """Statistic and the three p-values of the paper's procedure.

    Attributes
    ----------
    statistic:
        The paired t statistic of (after - before).
    p_two_sided / p_upper / p_lower:
        p-values of the two-tailed, upper-tailed (mean difference > 0)
        and lower-tailed (mean difference < 0) tests.
    n:
        Number of pairs.
    mean_difference:
        Mean of (after - before).
    """

    statistic: float
    p_two_sided: float
    p_upper: float
    p_lower: float
    n: int
    mean_difference: float


def t_sf(t: float, df: int) -> float:
    """Survival function P(T > t) of Student's t with ``df`` degrees.

    Uses the regularized incomplete beta function:
    P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0.
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if np.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = df / (df + t * t)
    tail = 0.5 * float(special.betainc(df / 2.0, 0.5, x))
    return tail if t >= 0 else 1.0 - tail


def paired_t_test(before, after) -> PairedTTestResult:
    """The paper's three paired t-tests on metric pairs.

    ``before`` holds the pre-cleaning metrics (case B or C), ``after``
    the post-cleaning metrics (case D), one entry per train/test split.

    Degenerate inputs follow the natural convention: if every pair is
    identical the difference is exactly zero and nothing is significant
    (all p-values 1); if the differences are constant but non-zero the
    statistic is infinite and the matching one-sided test has p = 0.
    """
    before = np.asarray(before, dtype=np.float64)
    after = np.asarray(after, dtype=np.float64)
    if before.shape != after.shape or before.ndim != 1:
        raise ValueError("before/after must be 1-D arrays of equal length")
    n = len(before)
    if n < 2:
        raise ValueError("need at least two pairs")

    differences = after - before
    mean = float(differences.mean())
    spread = float(differences.std(ddof=1))

    if spread < _EPS:
        if abs(mean) < _EPS:
            return PairedTTestResult(0.0, 1.0, 1.0, 1.0, n, mean)
        statistic = np.inf if mean > 0 else -np.inf
    else:
        statistic = mean / (spread / np.sqrt(n))

    df = n - 1
    p_upper = t_sf(statistic, df)
    p_lower = 1.0 - p_upper if np.isinf(statistic) else t_sf(-statistic, df)
    p_two = min(1.0, 2.0 * min(p_upper, p_lower))
    return PairedTTestResult(
        statistic=float(statistic),
        p_two_sided=p_two,
        p_upper=p_upper,
        p_lower=p_lower,
        n=n,
        mean_difference=mean,
    )
