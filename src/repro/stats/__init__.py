"""Statistics substrate: paired t-tests, FDR procedures, flag logic."""

from .fdr import (
    PROCEDURES,
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    reject,
)
from .flags import Flag, decide_flag, flag_distribution, flags_with_fdr
from .ttest import PairedTTestResult, paired_t_test, t_sf

__all__ = [
    "Flag",
    "PROCEDURES",
    "PairedTTestResult",
    "benjamini_hochberg",
    "benjamini_yekutieli",
    "bonferroni",
    "decide_flag",
    "flag_distribution",
    "flags_with_fdr",
    "paired_t_test",
    "reject",
    "t_sf",
]
