"""Multiple-testing corrections (paper §IV-C).

The paper controls false discoveries per relation with the
Benjamini-Yekutieli procedure, chosen because it holds under *arbitrary*
dependence between tests — appropriate when experiment specifications
share key attributes.  Bonferroni and Benjamini-Hochberg are implemented
too: the paper discusses both, and the ablation benchmark compares all
three against no correction.
"""

from __future__ import annotations

import numpy as np

PROCEDURES = ("none", "bonferroni", "bh", "by")


def bonferroni(pvalues, alpha: float = 0.05) -> np.ndarray:
    """Reject p_i iff p_i <= alpha / m."""
    pvalues = _check(pvalues)
    return pvalues <= alpha / len(pvalues)


def benjamini_hochberg(pvalues, alpha: float = 0.05) -> np.ndarray:
    """Classic step-up FDR control (independent / PRDS tests)."""
    return _step_up(_check(pvalues), alpha, correction=1.0)


def benjamini_yekutieli(pvalues, alpha: float = 0.05) -> np.ndarray:
    """BY procedure: BH with the harmonic correction c(m) = sum 1/i.

    Valid under arbitrary dependence — the paper's choice.
    """
    pvalues = _check(pvalues)
    harmonic = float(np.sum(1.0 / np.arange(1, len(pvalues) + 1)))
    return _step_up(pvalues, alpha, correction=harmonic)


def reject(pvalues, alpha: float = 0.05, procedure: str = "by") -> np.ndarray:
    """Dispatch on the procedure name ('none' | 'bonferroni' | 'bh' | 'by')."""
    if procedure == "none":
        return _check(pvalues) <= alpha
    if procedure == "bonferroni":
        return bonferroni(pvalues, alpha)
    if procedure == "bh":
        return benjamini_hochberg(pvalues, alpha)
    if procedure == "by":
        return benjamini_yekutieli(pvalues, alpha)
    raise ValueError(f"unknown procedure {procedure!r}; choose from {PROCEDURES}")


def _step_up(pvalues: np.ndarray, alpha: float, correction: float) -> np.ndarray:
    """Shared BH/BY step-up: find the largest k with p_(k) <= k*alpha/(m*c)."""
    m = len(pvalues)
    order = np.argsort(pvalues)
    ranked = pvalues[order]
    thresholds = alpha * np.arange(1, m + 1) / (m * correction)
    passing = np.nonzero(ranked <= thresholds)[0]
    rejected = np.zeros(m, dtype=bool)
    if len(passing) > 0:
        cutoff = passing[-1]
        rejected[order[: cutoff + 1]] = True
    return rejected


def _check(pvalues) -> np.ndarray:
    pvalues = np.asarray(pvalues, dtype=np.float64)
    if pvalues.ndim != 1 or len(pvalues) == 0:
        raise ValueError("pvalues must be a non-empty 1-D array")
    if np.any((pvalues < 0.0) | (pvalues > 1.0)):
        raise ValueError("p-values must lie in [0, 1]")
    return pvalues
