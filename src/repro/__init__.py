"""CleanML reproduction: the impact of data cleaning on ML classification.

Reproduction of Li et al., "CleanML: A Study for Evaluating the Impact
of Data Cleaning on ML Classification Tasks" (ICDE 2021).  The public
API re-exports the pieces a study author needs:

* datasets — 14 generators emulating the paper's corpora (Table 3);
* cleaning — detection/repair per error type (Table 2);
* ml — the seven classifiers plus robust-ML baselines;
* stats — paired t-tests, BY/BH/Bonferroni, flag logic;
* core — the study runner, the R1/R2/R3 database, Q1-Q5, and the
  §VII mixed-error / robust-ML / human-cleaning studies.

Quickstart::

    from repro import CleanMLStudy, StudyConfig, load_dataset

    study = CleanMLStudy(StudyConfig(n_splits=5))
    study.add(load_dataset("EEG"), "outliers")
    database = study.run()
    print(database["R1"].distribution())
"""

from .cleaning import (
    DUPLICATES,
    ERROR_TYPES,
    INCONSISTENCIES,
    MISLABELS,
    MISSING_VALUES,
    OUTLIERS,
    CleaningMethod,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    compose,
    methods_for,
)
from .core import (
    CleanMLDatabase,
    CleanMLStudy,
    ErrorTypeRun,
    Scenario,
    StudyConfig,
    run_human_study,
    run_mixed_study,
    run_robustml_study,
)
from .datasets import DATASET_NAMES, Dataset, datasets_with, load_dataset
from .ml import MODEL_NAMES, make_model
from .stats import Flag, paired_t_test
from .table import Table, make_schema, train_test_split

__version__ = "1.0.0"

__all__ = [
    "CleanMLDatabase",
    "CleanMLStudy",
    "CleaningMethod",
    "ComposedCleaning",
    "DATASET_NAMES",
    "DUPLICATES",
    "Dataset",
    "DetectionResult",
    "Detector",
    "ERROR_TYPES",
    "ErrorTypeRun",
    "Flag",
    "INCONSISTENCIES",
    "MISLABELS",
    "MISSING_VALUES",
    "MODEL_NAMES",
    "OUTLIERS",
    "Repair",
    "Scenario",
    "StudyConfig",
    "Table",
    "compose",
    "datasets_with",
    "load_dataset",
    "make_model",
    "make_schema",
    "methods_for",
    "paired_t_test",
    "run_human_study",
    "run_mixed_study",
    "run_robustml_study",
    "train_test_split",
]
