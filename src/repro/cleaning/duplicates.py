"""Duplicate detection and repair (paper §III-B-3).

Two detectors:

* **Key collision** (:class:`KeyCollisionDetector`) — records agreeing
  on the schema's key attributes are duplicates (missing key values
  never collide);
* **ZeroER** — unsupervised entity resolution over pair-similarity
  features (in :mod:`repro.cleaning.zeroer`).

Both produce match *pairs* as their :class:`DetectionResult`; repair is
always the same (:class:`DuplicateDeletionRepair`): inside each
duplicate cluster, keep the first record and delete the rest.
"""

from __future__ import annotations

import numpy as np

from ..table import Table
from .base import (
    DUPLICATES,
    ComposedCleaning,
    DetectionResult,
    Detector,
    check_fitted,
)
from .missing import RowDeletionRepair


class UnionFind:
    """Disjoint sets over 0..n-1 — groups duplicate pairs into clusters."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))

    def find(self, x: int) -> int:
        """Root of x's set (with path compression)."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing a and b (lower root wins)."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)

    def clusters(self) -> dict[int, list[int]]:
        """root -> sorted member list, only for clusters of size > 1."""
        groups: dict[int, list[int]] = {}
        for i in range(len(self._parent)):
            groups.setdefault(self.find(i), []).append(i)
        return {root: members for root, members in groups.items() if len(members) > 1}


def duplicate_row_mask(n_rows: int, pairs: list[tuple[int, int]]) -> np.ndarray:
    """Rows that :func:`deduplicate` would delete (cluster non-anchors)."""
    union = UnionFind(n_rows)
    for a, b in pairs:
        union.union(a, b)
    mask = np.zeros(n_rows, dtype=bool)
    for members in union.clusters().values():
        mask[members[1:]] = True
    return mask


def deduplicate(table: Table, pairs: list[tuple[int, int]]) -> Table:
    """Keep the first row of every duplicate cluster implied by ``pairs``."""
    return table.mask(~duplicate_row_mask(table.n_rows, pairs))


class KeyCollisionDetector(Detector):
    """Declare rows duplicates when their key attributes coincide.

    The key columns come from ``schema.keys``; with no keys declared, all
    categorical feature columns act as the key (a conservative default).
    """

    name = "KeyCollision"

    def fit(self, train: Table) -> "KeyCollisionDetector":
        self._key_columns = list(train.schema.keys) or list(
            train.schema.categorical_features
        )
        return self

    def collisions(self, table: Table) -> list[tuple[int, int]]:
        """All colliding (i, j) pairs, i < j."""
        check_fitted(self, "_key_columns")
        groups: dict[tuple, list[int]] = {}
        for i in range(table.n_rows):
            key = []
            for name in self._key_columns:
                value = table.column(name).values[i]
                if value is None or (isinstance(value, float) and np.isnan(value)):
                    key = None  # a missing key never collides
                    break
                key.append(value)
            if key is None:
                continue
            groups.setdefault(tuple(key), []).append(i)
        pairs = []
        for members in groups.values():
            anchor = members[0]
            pairs.extend((anchor, other) for other in members[1:])
        return pairs

    def detect(self, table: Table) -> DetectionResult:
        return DetectionResult(table.n_rows, pairs=self.collisions(table))

    def fingerprint(self) -> tuple:
        return ("KeyCollision",)


#: deleting a duplicate cluster's non-anchor rows is exactly the generic
#: row deletion over ``DetectionResult.rows()`` — one repair, two Table 2 rows
DuplicateDeletionRepair = RowDeletionRepair


class KeyCollisionCleaning(ComposedCleaning):
    """Key-collision detection repaired by cluster deletion."""

    def __init__(self) -> None:
        super().__init__(
            DUPLICATES, KeyCollisionDetector(), DuplicateDeletionRepair()
        )

    def collisions(self, table: Table) -> list[tuple[int, int]]:
        """All colliding (i, j) pairs, i < j (compatibility passthrough)."""
        return self.detector.collisions(table)
