"""Outlier detection and repair (paper §III-B-2).

Three detectors on numeric feature columns:

* **SD** — more than ``n_std`` (paper: 3) standard deviations from the
  training mean;
* **IQR** — outside ``[Q1 - k*IQR, Q3 + k*IQR]`` with ``k = 1.5``;
* **IF**  — isolation forest with contamination 0.01; row-level flags
  are expanded to every numeric feature cell of the flagged rows.

:class:`OutlierDetector` holds the per-column threshold / forest logic;
:class:`OutlierMaskDetector` adapts it to the composable
:class:`~repro.cleaning.base.Detector` interface, so all three share one
fit per split regardless of how many repairs consume them.  Repairs
impute detected cells with the mean / median / mode of the training
split's *non-outlying* values (:class:`OutlierImputationRepair`) or
delegate to HoloClean.  Only numeric columns participate, matching the
paper ("we consider only numerical outliers").
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import (
    OUTLIERS,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    check_fitted,
)
from .isolation_forest import IsolationForest

DETECTORS = ("SD", "IQR", "IF")
REPAIRS = ("mean", "median", "mode")


class OutlierDetector:
    """Fit-on-train detector producing per-cell outlier masks.

    ``fit`` learns column thresholds (or the isolation forest) from the
    training table; ``detect`` returns ``{column: boolean mask}`` for the
    numeric feature columns of any table.
    """

    def __init__(
        self,
        method: str = "IQR",
        n_std: float = 3.0,
        iqr_k: float = 1.5,
        contamination: float = 0.01,
        random_state: int | None = None,
    ) -> None:
        if method not in DETECTORS:
            raise ValueError(f"method must be one of {DETECTORS}")
        self.method = method
        self.n_std = n_std
        self.iqr_k = iqr_k
        self.contamination = contamination
        self.random_state = random_state

    def fit(self, train: Table) -> "OutlierDetector":
        self._columns = train.schema.numeric_features
        self._bounds: dict[str, tuple[float, float]] = {}
        if self.method == "SD":
            for name in self._columns:
                column = train.column(name)
                mean, std = column.mean(), column.std()
                self._bounds[name] = (
                    mean - self.n_std * std,
                    mean + self.n_std * std,
                )
        elif self.method == "IQR":
            for name in self._columns:
                column = train.column(name)
                q1, q3 = column.quantile(0.25), column.quantile(0.75)
                spread = self.iqr_k * (q3 - q1)
                self._bounds[name] = (q1 - spread, q3 + spread)
        else:
            matrix, means = _numeric_matrix(train, self._columns)
            self._if_means = means
            self._forest = IsolationForest(
                n_estimators=50,
                contamination=self.contamination,
                random_state=self.random_state,
            ).fit(matrix)
        return self

    def detect(self, table: Table) -> dict[str, np.ndarray]:
        """Per-column boolean masks of outlying cells (missing cells are
        never flagged — they belong to the missing-values error type)."""
        if not hasattr(self, "_columns"):
            raise RuntimeError("detector must be fitted first")
        masks: dict[str, np.ndarray] = {}
        if self.method in ("SD", "IQR"):
            for name in self._columns:
                values = table.column(name).values
                low, high = self._bounds[name]
                with np.errstate(invalid="ignore"):
                    mask = (values < low) | (values > high)
                mask[np.isnan(values)] = False
                masks[name] = mask
        else:
            matrix = _numeric_matrix(table, self._columns, self._if_means)[0]
            rows = self._forest.predict_outliers(matrix)
            for name in self._columns:
                mask = rows.copy()
                mask[np.isnan(table.column(name).values)] = False
                masks[name] = mask
        return masks

    def outlier_rows(self, table: Table) -> np.ndarray:
        """Rows containing at least one detected outlier cell."""
        masks = self.detect(table)
        if not masks:
            return np.zeros(table.n_rows, dtype=bool)
        return np.logical_or.reduce(list(masks.values()))


class OutlierMaskDetector(Detector):
    """:class:`OutlierDetector` adapted to the composable interface.

    The fingerprint covers every parameter that shapes the detection, so
    SD/IQR thresholds and *seeded* isolation forests are shareable; an
    unseeded forest (``random_state=None``) fits nondeterministically
    and opts out of the cache.
    """

    def __init__(
        self,
        method: str = "IQR",
        n_std: float = 3.0,
        iqr_k: float = 1.5,
        contamination: float = 0.01,
        random_state: int | None = None,
    ) -> None:
        self._detector = OutlierDetector(
            method=method,
            n_std=n_std,
            iqr_k=iqr_k,
            contamination=contamination,
            random_state=random_state,
        )

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._detector.method

    @property
    def inner(self) -> OutlierDetector:
        """The underlying threshold/forest detector."""
        return self._detector

    def fit(self, train: Table) -> "OutlierMaskDetector":
        self._detector.fit(train)
        return self

    def detect(self, table: Table) -> DetectionResult:
        return DetectionResult(
            table.n_rows, cell_masks=self._detector.detect(table)
        )

    def fingerprint(self) -> tuple | None:
        inner = self._detector
        if inner.method == "IF" and inner.random_state is None:
            return None
        return (
            "outliers",
            inner.method,
            inner.n_std,
            inner.iqr_k,
            inner.contamination,
            inner.random_state,
        )


class OutlierImputationRepair(Repair):
    """Replace flagged cells with a clean-training-split statistic.

    Fitting needs the training detection (the statistic is computed over
    *non-outlying* present values only), so :attr:`needs_detection` is
    set.
    """

    needs_detection = True

    def __init__(self, strategy: str) -> None:
        if strategy not in REPAIRS:
            raise ValueError(f"strategy must be one of {REPAIRS}")
        self.strategy = strategy

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.strategy.capitalize()

    def fit(
        self, train: Table, detection: DetectionResult | None
    ) -> "OutlierImputationRepair":
        self._fill: dict[str, float] = {}
        for name, mask in detection.cell_masks.items():
            values = train.column(name).values
            keep = ~mask & ~np.isnan(values)
            clean_column = Column(values[keep], train.column(name).ctype)
            if self.strategy == "mean":
                fill = clean_column.mean()
            elif self.strategy == "median":
                fill = clean_column.median()
            else:
                fill = clean_column.mode()
            if isinstance(fill, float) and np.isnan(fill):
                fill = 0.0
            self._fill[name] = float(fill)
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        check_fitted(self, "_fill")
        out = table
        for name, mask in detection.cell_masks.items():
            if not mask.any():
                continue
            values = out.column(name).values.copy()
            values[mask] = self._fill[name]
            out = out.with_column(name, Column(values, out.column(name).ctype))
        return out


class OutlierCleaning(ComposedCleaning):
    """Detector x imputation repair for numeric outliers.

    Parameters
    ----------
    detector:
        ``"SD"``, ``"IQR"`` or ``"IF"``.
    strategy:
        ``"mean"``, ``"median"`` or ``"mode"`` — the statistic of the
        training split's non-outlying values used as replacement.
    """

    def __init__(
        self,
        detector: str = "IQR",
        strategy: str = "mean",
        random_state: int | None = None,
    ) -> None:
        super().__init__(
            OUTLIERS,
            OutlierMaskDetector(method=detector, random_state=random_state),
            OutlierImputationRepair(strategy),
        )
        self.strategy = strategy


def _numeric_matrix(
    table: Table, columns: list[str], means: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Dense numeric matrix with NaNs mean-filled (for the forest)."""
    matrix = np.column_stack(
        [table.column(name).values for name in columns]
    ) if columns else np.zeros((table.n_rows, 0))
    if means is None:
        with np.errstate(invalid="ignore"):
            means = np.nanmean(matrix, axis=0) if matrix.size else np.zeros(0)
        means = np.nan_to_num(means)
    holes = np.isnan(matrix)
    if holes.any():
        matrix = np.where(holes, means[None, :], matrix)
    return matrix, means
