"""Sequential composition of cleaning methods (paper §VII-A).

Mixed-error cleaning applies one method per error type in sequence.  The
composite is itself a :class:`CleaningMethod`: fitting proceeds stage by
stage, each stage fitted on the output of the previous stages — the same
leakage-free discipline as single-method cleaning, since every stage
still only ever sees training data.
"""

from __future__ import annotations

from ..table import Table
from .base import CleaningMethod, DetectionCache

#: canonical application order for mixed cleaning: structural errors
#: first (dedupe, normalize spellings), then cell-level repairs, then
#: labels — later stages benefit from earlier normalization
STAGE_ORDER = (
    "inconsistencies",
    "duplicates",
    "missing_values",
    "outliers",
    "mislabels",
)


class CompositeCleaning(CleaningMethod):
    """Apply several cleaning methods in a fixed, sensible order."""

    def __init__(self, methods: list[CleaningMethod]) -> None:
        if not methods:
            raise ValueError("composite needs at least one method")
        types = [m.error_type for m in methods]
        if len(set(types)) != len(types):
            raise ValueError("one method per error type in a composite")
        self.methods = sorted(
            methods,
            key=lambda m: STAGE_ORDER.index(m.error_type)
            if m.error_type in STAGE_ORDER
            else len(STAGE_ORDER),
        )
        self.error_type = "+".join(m.error_type for m in self.methods)

    @property
    def detection(self) -> str:  # type: ignore[override]
        return "+".join(m.detection for m in self.methods)

    @property
    def repair(self) -> str:  # type: ignore[override]
        return "+".join(m.repair for m in self.methods)

    def bind_cache(self, cache: DetectionCache | None) -> "CompositeCleaning":
        """Propagate a shared detection cache to every composable stage.

        Stage detections key on the intermediate tables each stage sees,
        so sharing mostly pays off when several composites reuse a
        stage's detector on the same input (and between each stage's own
        fit-time and transform-time detections).
        """
        for method in self.methods:
            bind = getattr(method, "bind_cache", None)
            if bind is not None:
                bind(cache)
        return self

    def fit(self, train: Table) -> "CompositeCleaning":
        stage_input = train
        for method in self.methods:
            method.fit(stage_input)
            stage_input = method.transform(stage_input)
        return self

    def transform(self, table: Table) -> Table:
        for method in self.methods:
            table = method.transform(table)
        return table
