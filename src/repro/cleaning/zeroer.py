"""ZeroER-style unsupervised entity resolution (Wu et al., SIGMOD 2020).

ZeroER's core idea: similarity feature vectors of record pairs follow a
two-component generative mixture — one component for matches, one for
unmatches — whose parameters can be learned with EM using **zero labeled
examples**.  This module reproduces that pipeline:

1. **Blocking** — candidate pairs share at least one token in some
   categorical field (or all pairs when the table is small);
2. **Featurization** — per categorical column: token-Jaccard and exact
   match; per numeric column: ``exp(-|a-b| / scale)`` with the training
   column's std as scale;
3. **EM** over a two-component diagonal Gaussian mixture, initialized
   from the overall-similarity extremes;
4. pairs whose match-component posterior exceeds a threshold are
   duplicates; union-find clusters them and all but the first record of
   each cluster are deleted.

The mixture is fitted on the training split and reused to score test
pairs, keeping the fit-on-train discipline.
"""

from __future__ import annotations

import numpy as np

from ..table import Table
from .base import DUPLICATES, ComposedCleaning, DetectionResult, Detector, check_fitted
from .duplicates import DuplicateDeletionRepair

_SMALL_TABLE = 400  # below this, skip blocking and enumerate all pairs


def tokenize(value: str | None) -> set[str]:
    """Lower-cased alphanumeric tokens of a cell value."""
    if value is None:
        return set()
    cleaned = "".join(c.lower() if c.isalnum() else " " for c in str(value))
    return {token for token in cleaned.split() if token}


def candidate_pairs(table: Table, columns: list[str]) -> list[tuple[int, int]]:
    """Blocked candidate pairs (i, j) with i < j.

    Small tables are enumerated exhaustively; larger ones use token
    blocking over the given categorical columns.
    """
    n = table.n_rows
    if n <= _SMALL_TABLE:
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    buckets: dict[str, list[int]] = {}
    for i in range(n):
        tokens: set[str] = set()
        for name in columns:
            tokens |= tokenize(table.column(name).values[i])
        for token in tokens:
            buckets.setdefault(token, []).append(i)
    pairs: set[tuple[int, int]] = set()
    for members in buckets.values():
        if len(members) > 50:  # stop-token guard
            continue
        for a_pos, a in enumerate(members):
            for b in members[a_pos + 1 :]:
                pairs.add((a, b))
    return sorted(pairs)


class PairFeaturizer:
    """Similarity feature vectors for record pairs.

    Scales for numeric distances are learned from the training table so
    train and test pairs live in the same feature space.  Categorical
    similarities are weighted by the column's *uniqueness ratio*
    (distinct values / rows): agreeing on a near-key column like a name
    is strong identity evidence, agreeing on a 5-value city column is
    not.  Without this, the mixture model separates "same city" from
    "different city" instead of match from unmatch.
    """

    def fit(self, train: Table) -> "PairFeaturizer":
        self.categorical = list(train.schema.categorical_features)
        self.numeric = list(train.schema.numeric_features)
        self.scales = {}
        for name in self.numeric:
            std = train.column(name).std()
            self.scales[name] = std if std and not np.isnan(std) and std > 0 else 1.0
        self.weights = {}
        n_rows = max(train.n_rows, 1)
        for name in self.categorical:
            distinct = len(train.column(name).unique())
            self.weights[name] = max(distinct / n_rows, 0.05)
        self.n_features = 2 * len(self.categorical) + len(self.numeric)
        return self

    def features(self, table: Table, pairs: list[tuple[int, int]]) -> np.ndarray:
        """Similarity feature matrix, one row per candidate pair."""
        out = np.zeros((len(pairs), self.n_features))
        token_cache: dict[tuple[str, int], set[str]] = {}

        def tokens(name: str, row: int) -> set[str]:
            key = (name, row)
            if key not in token_cache:
                token_cache[key] = tokenize(table.column(name).values[row])
            return token_cache[key]

        for p, (a, b) in enumerate(pairs):
            col = 0
            for name in self.categorical:
                weight = self.weights[name]
                ta, tb = tokens(name, a), tokens(name, b)
                union = len(ta | tb)
                jaccard = len(ta & tb) / union if union else 0.0
                out[p, col] = weight * jaccard
                va = table.column(name).values[a]
                vb = table.column(name).values[b]
                exact = 1.0 if (va is not None and va == vb) else 0.0
                out[p, col + 1] = weight * exact
                col += 2
            for name in self.numeric:
                va = table.column(name).values[a]
                vb = table.column(name).values[b]
                if np.isnan(va) or np.isnan(vb):
                    out[p, col] = 0.0
                else:
                    out[p, col] = np.exp(-abs(va - vb) / self.scales[name])
                col += 1
        return out


class TwoComponentGaussianMixture:
    """Diagonal-covariance GMM with exactly two components, fitted by EM.

    Component 1 is pinned to the high-similarity side at initialization,
    so its posterior is the match probability.

    Parameters
    ----------
    update:
        ``"all"`` runs classic EM (means, variances and weights all
        adapt).  ``"weights"`` freezes the component *shapes* at their
        seeded values and lets only the mixing weights adapt — ZeroER's
        regularized regime, which stops the match component from drifting
        down and absorbing a large moderately-similar pair population
        (e.g. "records from the same city").
    seed_fraction:
        Fraction of the most-similar pairs used to seed the match
        component; ``None`` picks the seed adaptively by cutting at the
        largest similarity gap in the top tail (the right choice when
        the true duplicate count is unknown).
    var_floor:
        Lower bound on every per-feature variance; similarity features
        live in [0, 1], so the default tolerates small perturbations
        around the seed without collapsing to a point mass.
    """

    def __init__(
        self,
        max_iter: int = 100,
        tol: float = 1e-6,
        update: str = "all",
        seed_fraction: float | None = 0.05,
        var_floor: float = 1e-4,
    ) -> None:
        if update not in ("all", "weights"):
            raise ValueError("update must be 'all' or 'weights'")
        self.max_iter = max_iter
        self.tol = tol
        self.update = update
        self.seed_fraction = seed_fraction
        self.var_floor = var_floor

    def fit(self, X: np.ndarray) -> "TwoComponentGaussianMixture":
        X = np.asarray(X, dtype=np.float64)
        n = len(X)
        if n < 4:
            raise ValueError("need at least 4 pairs to fit the mixture")
        overall = X.mean(axis=1)
        order = np.argsort(overall)
        if self.seed_fraction is None:
            n_seed = _gap_seed_count(overall[order])
        else:
            n_seed = max(2, int(n * self.seed_fraction))
        top = X[order[-n_seed:]]
        bottom = X[order[:-n_seed]]

        self.weights = np.array([1.0 - n_seed / n, n_seed / n])
        self.means = np.vstack([bottom.mean(axis=0), top.mean(axis=0)])
        self.vars = np.vstack(
            [
                bottom.var(axis=0) + self.var_floor,
                top.var(axis=0) + self.var_floor,
            ]
        )

        previous = -np.inf
        for _ in range(self.max_iter):
            resp, log_likelihood = self._e_step(X)
            self._m_step(X, resp)
            if abs(log_likelihood - previous) < self.tol:
                break
            previous = log_likelihood
        return self

    def _log_density(self, X: np.ndarray) -> np.ndarray:
        out = np.zeros((len(X), 2))
        for k in range(2):
            diff = X - self.means[k]
            out[:, k] = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.vars[k]) + diff**2 / self.vars[k],
                axis=1,
            ) + np.log(max(self.weights[k], 1e-12))
        return out

    def _e_step(self, X: np.ndarray) -> tuple[np.ndarray, float]:
        log_joint = self._log_density(X)
        shift = log_joint.max(axis=1, keepdims=True)
        joint = np.exp(log_joint - shift)
        total = joint.sum(axis=1, keepdims=True)
        resp = joint / total
        log_likelihood = float(np.sum(np.log(total) + shift))
        return resp, log_likelihood

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        for k in range(2):
            mass = resp[:, k].sum()
            if mass < 1e-9:
                continue
            self.weights[k] = mass / len(X)
            if self.update == "weights":
                continue
            self.means[k] = (resp[:, k][:, None] * X).sum(axis=0) / mass
            diff = X - self.means[k]
            self.vars[k] = np.maximum(
                (resp[:, k][:, None] * diff**2).sum(axis=0) / mass,
                self.var_floor,
            )

    def match_posterior(self, X: np.ndarray) -> np.ndarray:
        """P(match component | x) for each row of X."""
        resp, _ = self._e_step(np.asarray(X, dtype=np.float64))
        # component 1 was initialized on the similar side, but EM can swap;
        # the component with the larger mean similarity is "match"
        match = int(np.argmax(self.means.mean(axis=1)))
        return resp[:, match]


def _gap_seed_count(sorted_similarity: np.ndarray, max_fraction: float = 0.05) -> int:
    """Seed size chosen at the largest gap in the top similarity tail.

    Scans the ``max_fraction`` most-similar pairs (ascending input) and
    cuts where consecutive similarities jump the most — duplicates sit
    above a visible gap, arbitrary similar-ish pairs do not.
    """
    n = len(sorted_similarity)
    tail = max(4, int(n * max_fraction))
    tail = min(tail, n - 1)
    top = sorted_similarity[-tail - 1 :]
    gaps = np.diff(top)
    cut = int(np.argmax(gaps))
    return max(2, len(top) - 1 - cut)


class ZeroERDetector(Detector):
    """ZeroER match detection: blocked pairs scored by the fitted mixture.

    ``fit`` already featurizes every candidate training pair to run EM,
    so :meth:`fit_detect` scores those features in place and hands the
    training detection to the cache for free — without it, a
    ``detect(train)`` would re-block and re-featurize the whole table.

    Parameters
    ----------
    threshold:
        Match-posterior cutoff above which a pair is a duplicate.
    """

    name = "ZeroER"

    def __init__(self, threshold: float = 0.9) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold

    def fit(self, train: Table) -> "ZeroERDetector":
        self._fit(train)
        return self

    def fit_detect(self, train: Table) -> DetectionResult:
        pairs, X = self._fit(train)
        return DetectionResult(train.n_rows, pairs=self._score(pairs, X))

    def _fit(self, train: Table):
        self._featurizer = PairFeaturizer().fit(train)
        pairs = candidate_pairs(train, self._featurizer.categorical)
        X = None
        self._mixture: TwoComponentGaussianMixture | None = None
        if len(pairs) >= 4:
            X = self._featurizer.features(train, pairs)
            # ZeroER's regularized regime: a small seeded match component
            # with frozen shape, so EM cannot drift into "similar-ish"
            # pair populations (the paper's false-positive tendency shows
            # up as an over-eager seed instead)
            self._mixture = TwoComponentGaussianMixture(
                update="weights", seed_fraction=None
            ).fit(X)
        return pairs, X

    def _score(self, pairs, X) -> list[tuple[int, int]]:
        """Pairs whose match posterior clears the threshold."""
        if self._mixture is None or not pairs:
            return []
        posterior = self._mixture.match_posterior(X)
        return [pair for pair, p in zip(pairs, posterior) if p > self.threshold]

    def matched_pairs(self, table: Table) -> list[tuple[int, int]]:
        """Pairs the fitted model declares duplicates."""
        check_fitted(self, "_featurizer")
        if self._mixture is None:
            return []
        pairs = candidate_pairs(table, self._featurizer.categorical)
        if not pairs:
            return []
        X = self._featurizer.features(table, pairs)
        return self._score(pairs, X)

    def detect(self, table: Table) -> DetectionResult:
        return DetectionResult(table.n_rows, pairs=self.matched_pairs(table))

    def fingerprint(self) -> tuple:
        return ("ZeroER", self.threshold)


class ZeroERCleaning(ComposedCleaning):
    """Unsupervised duplicate cleaning via the ZeroER mixture model.

    Parameters
    ----------
    threshold:
        Match-posterior cutoff above which a pair is a duplicate.
    """

    def __init__(self, threshold: float = 0.9) -> None:
        super().__init__(
            DUPLICATES, ZeroERDetector(threshold), DuplicateDeletionRepair()
        )
        self.threshold = threshold

    def matched_pairs(self, table: Table) -> list[tuple[int, int]]:
        """Pairs the fitted model declares duplicates (compat passthrough)."""
        return self.detector.matched_pairs(table)
