"""Inconsistency detection and repair (paper §III-B-4).

OpenRefine's text-facet clustering is, under the hood, *fingerprint key
collision*: normalize a string (lowercase, strip punctuation, split,
sort, dedupe tokens) and cluster values sharing a fingerprint — "U.S.
Bank" and "US Bank" collide on ``"bank us"``.  Repair merges every value
in a cluster into the cluster's most frequent raw value, exactly the
paper's "merge all values in one cluster into the most frequent one".

Canonical values are learned from the training split and reused on test.
:class:`FingerprintDetector` flags non-canonical cells and carries each
cell's canonical replacement in the detection payload, which keeps
:class:`MergeRepair` a pure function of ``(table, detection)``.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import (
    INCONSISTENCIES,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    check_fitted,
)

# common abbreviation expansions applied before fingerprinting; mirrors
# the normalization users configure in OpenRefine for entity-ish columns
_EXPANSIONS = {
    "st": "street",
    "ave": "avenue",
    "dr": "drive",
    "rd": "road",
    "univ": "university",
    "inst": "institute",
    "dept": "department",
    "intl": "international",
    "corp": "corporation",
    "inc": "incorporated",
    "co": "company",
    "usa": "us",
}


def fingerprint(value: str) -> str:
    """OpenRefine's fingerprint key: normalize, tokenize, sort, dedupe.

    Punctuation is *removed* (not replaced by spaces), matching
    OpenRefine's keyer — "U.S." and "US" both normalize to "us".
    """
    cleaned = "".join(
        c.lower() if c.isalnum() or c.isspace() else "" for c in value.strip()
    )
    tokens = sorted({_EXPANSIONS.get(token, token) for token in cleaned.split()})
    return " ".join(tokens)


def cluster_values(values: list[str]) -> dict[str, list[str]]:
    """fingerprint -> distinct raw values sharing it (insertion order)."""
    clusters: dict[str, dict[str, None]] = {}
    for value in values:
        clusters.setdefault(fingerprint(value), {}).setdefault(value, None)
    return {key: list(raw) for key, raw in clusters.items()}


def canonical_mapping(train: Table) -> dict[str, dict[str, str]]:
    """Per-column map from raw value to its cluster's canonical value."""
    canonical: dict[str, dict[str, str]] = {}
    for name in train.schema.categorical_features:
        counts = train.column(name).value_counts()
        clusters = cluster_values(list(counts))
        mapping: dict[str, str] = {}
        for raw_values in clusters.values():
            if len(raw_values) < 2:
                continue
            winner = max(raw_values, key=lambda v: (counts.get(v, 0), v))
            for raw in raw_values:
                if raw != winner:
                    mapping[raw] = winner
        if mapping:
            canonical[name] = mapping
    return canonical


class FingerprintDetector(Detector):
    """Fingerprint clustering learned on train, applied to any table.

    ``detect`` flags every cell holding a non-canonical spelling and
    records the canonical replacements in the payload (one value array
    per flagged column, valid where the mask is set).  Values whose
    fingerprint was never seen in training pass through unflagged.
    """

    name = "OpenRefine"

    def fit(self, train: Table) -> "FingerprintDetector":
        self._canonical = canonical_mapping(train)
        return self

    def detect(self, table: Table) -> DetectionResult:
        check_fitted(self, "_canonical")
        masks: dict[str, np.ndarray] = {}
        suggestions: dict[str, np.ndarray] = {}
        for name, mapping in self._canonical.items():
            values = table.column(name).values
            mask = np.array([value in mapping for value in values], dtype=bool)
            masks[name] = mask
            if mask.any():
                suggested = values.copy()
                for i in np.nonzero(mask)[0]:
                    suggested[i] = mapping[values[i]]
                suggestions[name] = suggested
        return DetectionResult(
            table.n_rows,
            cell_masks=masks,
            payload={"suggestions": suggestions},
        )

    def fingerprint(self) -> tuple:
        return ("OpenRefine",)


class RulesDetector(FingerprintDetector):
    """Human-curated rules instead of learned clusters (paper §VII-C).

    The caller supplies explicit ``{column: {wrong value: right value}}``
    rules; ``fit`` merely restricts them to the training schema's
    categorical features.
    """

    name = "Rules"

    def __init__(self, rules: dict[str, dict[str, str]]) -> None:
        self._rules = {col: dict(mapping) for col, mapping in rules.items()}

    def fit(self, train: Table) -> "RulesDetector":
        self._canonical = {
            name: dict(mapping)
            for name, mapping in self._rules.items()
            if name in train.schema.categorical_features
        }
        return self

    def fingerprint(self) -> tuple | None:
        return None  # rules are caller state, not a function of train


class MergeRepair(Repair):
    """Rewrite flagged cells to their canonical (payload) values."""

    name = "Merge"

    def fit(self, train: Table, detection: DetectionResult | None) -> "MergeRepair":
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        out = table
        for name, mask in detection.cell_masks.items():
            if not mask.any():
                continue
            suggested = detection.payload["suggestions"][name]
            out = out.with_column(
                name, Column(suggested, out.column(name).ctype)
            )
        return out


class InconsistencyCleaning(ComposedCleaning):
    """Fingerprint clustering + merge-to-most-frequent."""

    def __init__(self) -> None:
        super().__init__(INCONSISTENCIES, FingerprintDetector(), MergeRepair())

    def inconsistent_cells(self, table: Table) -> dict[str, np.ndarray]:
        """Per-column masks of cells holding a non-canonical spelling."""
        return dict(self.detector.detect(table).cell_masks)


class RuleBasedInconsistencyCleaning(InconsistencyCleaning):
    """Human-curated cleaning rules (paper §VII-C, denial-constraint style).

    Instead of learning clusters from data, the caller supplies explicit
    ``{column: {wrong value: right value}}`` rules — the code path the
    paper's "manually curate data quality rules" comparison exercises.
    """

    def __init__(self, rules: dict[str, dict[str, str]]) -> None:
        ComposedCleaning.__init__(
            self, INCONSISTENCIES, RulesDetector(rules), MergeRepair()
        )
