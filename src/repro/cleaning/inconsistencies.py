"""Inconsistency detection and repair (paper §III-B-4).

OpenRefine's text-facet clustering is, under the hood, *fingerprint key
collision*: normalize a string (lowercase, strip punctuation, split,
sort, dedupe tokens) and cluster values sharing a fingerprint — "U.S.
Bank" and "US Bank" collide on ``"bank us"``.  Repair merges every value
in a cluster into the cluster's most frequent raw value, exactly the
paper's "merge all values in one cluster into the most frequent one".

Canonical values are learned from the training split and reused on test.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import INCONSISTENCIES, CleaningMethod, check_fitted

# common abbreviation expansions applied before fingerprinting; mirrors
# the normalization users configure in OpenRefine for entity-ish columns
_EXPANSIONS = {
    "st": "street",
    "ave": "avenue",
    "dr": "drive",
    "rd": "road",
    "univ": "university",
    "inst": "institute",
    "dept": "department",
    "intl": "international",
    "corp": "corporation",
    "inc": "incorporated",
    "co": "company",
    "usa": "us",
}


def fingerprint(value: str) -> str:
    """OpenRefine's fingerprint key: normalize, tokenize, sort, dedupe.

    Punctuation is *removed* (not replaced by spaces), matching
    OpenRefine's keyer — "U.S." and "US" both normalize to "us".
    """
    cleaned = "".join(
        c.lower() if c.isalnum() or c.isspace() else "" for c in value.strip()
    )
    tokens = sorted({_EXPANSIONS.get(token, token) for token in cleaned.split()})
    return " ".join(tokens)


def cluster_values(values: list[str]) -> dict[str, list[str]]:
    """fingerprint -> distinct raw values sharing it (insertion order)."""
    clusters: dict[str, dict[str, None]] = {}
    for value in values:
        clusters.setdefault(fingerprint(value), {}).setdefault(value, None)
    return {key: list(raw) for key, raw in clusters.items()}


class InconsistencyCleaning(CleaningMethod):
    """Fingerprint clustering + merge-to-most-frequent.

    ``fit`` builds, per categorical feature column, a map from raw value
    to the canonical (most frequent) value of its fingerprint cluster;
    ``transform`` rewrites matching values.  Values whose fingerprint was
    never seen in training pass through unchanged.
    """

    error_type = INCONSISTENCIES
    detection = "OpenRefine"
    repair = "Merge"

    def fit(self, train: Table) -> "InconsistencyCleaning":
        self._canonical: dict[str, dict[str, str]] = {}
        for name in train.schema.categorical_features:
            counts = train.column(name).value_counts()
            clusters = cluster_values(list(counts))
            mapping: dict[str, str] = {}
            for raw_values in clusters.values():
                if len(raw_values) < 2:
                    continue
                winner = max(raw_values, key=lambda v: (counts.get(v, 0), v))
                for raw in raw_values:
                    if raw != winner:
                        mapping[raw] = winner
            if mapping:
                self._canonical[name] = mapping
        return self

    def inconsistent_cells(self, table: Table) -> dict[str, np.ndarray]:
        """Per-column masks of cells holding a non-canonical spelling."""
        check_fitted(self, "_canonical")
        masks: dict[str, np.ndarray] = {}
        for name, mapping in self._canonical.items():
            values = table.column(name).values
            masks[name] = np.array(
                [value in mapping for value in values], dtype=bool
            )
        return masks

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_canonical")
        out = table
        for name, mapping in self._canonical.items():
            column = out.column(name)
            if not any(value in mapping for value in column.values):
                continue
            values = column.values.copy()
            for i, value in enumerate(values):
                if value in mapping:
                    values[i] = mapping[value]
            out = out.with_column(name, Column(values, column.ctype))
        return out

    def affected_rows(self, table: Table) -> np.ndarray:
        masks = self.inconsistent_cells(table)
        if not masks:
            return np.zeros(table.n_rows, dtype=bool)
        return np.logical_or.reduce(list(masks.values()))


class RuleBasedInconsistencyCleaning(InconsistencyCleaning):
    """Human-curated cleaning rules (paper §VII-C, denial-constraint style).

    Instead of learning clusters from data, the caller supplies explicit
    ``{column: {wrong value: right value}}`` rules — the code path the
    paper's "manually curate data quality rules" comparison exercises.
    """

    detection = "Rules"
    repair = "Merge"

    def __init__(self, rules: dict[str, dict[str, str]]) -> None:
        self._rules = {col: dict(mapping) for col, mapping in rules.items()}

    def fit(self, train: Table) -> "RuleBasedInconsistencyCleaning":
        self._canonical = {
            name: dict(mapping)
            for name, mapping in self._rules.items()
            if name in train.schema.categorical_features
        }
        return self
