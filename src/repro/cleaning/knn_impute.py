"""KNN imputation — an extension cleaning method (paper §VIII).

The paper's §VIII calls for "better automatic cleaning algorithms"; KNN
imputation is the practitioner's usual next step beyond mean/mode: fill
a missing cell from the k most similar *complete-on-that-column*
training rows, measured on the observed features.  It slots into the
registry like any Table-2 method, demonstrating the study's
extensibility with a method the paper did not evaluate.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from ..table.encode import FeatureEncoder
from .base import MISSING_VALUES, CleaningMethod, check_fitted
from .missing import detect_missing_rows


class KNNImputationCleaning(CleaningMethod):
    """Fill missing cells from the k nearest training rows.

    Distances are computed on the standardized observed features (via
    the NaN-preserving encoder); a missing coordinate contributes the
    average of the observed squared distances, so rows with different
    missingness patterns remain comparable.

    Parameters
    ----------
    n_neighbors:
        Number of donor rows per imputed cell.
    """

    error_type = MISSING_VALUES
    detection = "EmptyEntries"
    repair = "KNN"

    def __init__(self, n_neighbors: int = 5) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = n_neighbors

    def fit(self, train: Table) -> "KNNImputationCleaning":
        self._encoder = FeatureEncoder(numeric_missing="nan")
        self._encoder.fit(train.features_table())
        self._train_matrix = self._encoder.transform(train.features_table())
        self._train_table = train
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_train_matrix")
        holes = detect_missing_rows(table)
        if not holes.any():
            return table
        query_matrix = self._encoder.transform(table.features_table())
        out = table
        for row in np.nonzero(holes)[0]:
            donors = self._nearest_rows(query_matrix[row])
            out = self._fill_row(out, int(row), donors)
        return out

    def _nearest_rows(self, query: np.ndarray) -> np.ndarray:
        """Indices of the k nearest training rows under masked distance."""
        diff = self._train_matrix - query[None, :]
        squared = diff**2
        observed = ~np.isnan(squared)
        # average observed squared distance; all-NaN pairs fall to +inf
        counts = observed.sum(axis=1)
        sums = np.where(observed, squared, 0.0).sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            distances = np.where(counts > 0, sums / np.maximum(counts, 1), np.inf)
        k = min(self.n_neighbors, len(distances))
        return np.argpartition(distances, k - 1)[:k]

    def _fill_row(self, table: Table, row: int, donors: np.ndarray) -> Table:
        for name in table.schema.feature_names:
            column = table.column(name)
            value = column.values[row]
            if column.is_numeric:
                if not np.isnan(value):
                    continue
                donor_values = self._train_table.column(name).values[donors]
                donor_values = donor_values[~np.isnan(donor_values)]
                fill = float(np.mean(donor_values)) if len(donor_values) else 0.0
            else:
                if value is not None:
                    continue
                donor_values = [
                    v
                    for v in self._train_table.column(name).values[donors]
                    if v is not None
                ]
                if donor_values:
                    counts: dict[str, int] = {}
                    for v in donor_values:
                        counts[v] = counts.get(v, 0) + 1
                    fill = max(counts, key=lambda v: counts[v])
                else:
                    fill = "missing"
            values = column.values.copy()
            values[row] = fill
            table = table.with_column(name, Column(values, column.ctype))
        return table

    def affected_rows(self, table: Table) -> np.ndarray:
        return detect_missing_rows(table)
