"""Paper Table 2 as code: every (detection, repair) pair per error type.

``methods_for(error_type)`` returns fresh, unfitted cleaning methods in
the paper's order.  The runner iterates these to populate R1, and R3's
cleaning-method selection searches over exactly this space.
"""

from __future__ import annotations

from .base import (
    DUPLICATES,
    ERROR_TYPES,
    INCONSISTENCIES,
    MISLABELS,
    MISSING_VALUES,
    OUTLIERS,
    CleaningMethod,
)
from .duplicates import KeyCollisionCleaning
from .holoclean import HoloCleanMissingCleaning, HoloCleanOutlierCleaning
from .inconsistencies import InconsistencyCleaning
from .mislabels import ConfidentLearningCleaning
from .missing import DeletionCleaning, simple_imputation_methods
from .outliers import DETECTORS, REPAIRS, OutlierCleaning
from .zeroer import ZeroERCleaning


def missing_value_methods(include_holoclean: bool = True) -> list[CleaningMethod]:
    """The seven imputation repairs of Table 2 (deletion is the baseline)."""
    methods: list[CleaningMethod] = list(simple_imputation_methods())
    if include_holoclean:
        methods.append(HoloCleanMissingCleaning())
    return methods


def outlier_methods(
    include_holoclean: bool = True, random_state: int | None = None
) -> list[CleaningMethod]:
    """Detector x repair grid: {SD, IQR, IF} x {mean, median, mode, HoloClean}."""
    methods: list[CleaningMethod] = []
    for detector in DETECTORS:
        for strategy in REPAIRS:
            methods.append(
                OutlierCleaning(
                    detector=detector, strategy=strategy, random_state=random_state
                )
            )
        if include_holoclean:
            methods.append(
                HoloCleanOutlierCleaning(detector=detector, random_state=random_state)
            )
    return methods


def duplicate_methods(include_zeroer: bool = True) -> list[CleaningMethod]:
    """Key collision and ZeroER, both repaired by deletion."""
    methods: list[CleaningMethod] = [KeyCollisionCleaning()]
    if include_zeroer:
        methods.append(ZeroERCleaning())
    return methods


def inconsistency_methods() -> list[CleaningMethod]:
    """OpenRefine-style fingerprint clustering with merge repair."""
    return [InconsistencyCleaning()]


def mislabel_methods(seed: int | None = None) -> list[CleaningMethod]:
    """cleanlab-style confident learning."""
    return [ConfidentLearningCleaning(seed=seed)]


def methods_for(
    error_type: str,
    include_advanced: bool = True,
    random_state: int | None = None,
) -> list[CleaningMethod]:
    """Fresh cleaning methods for ``error_type`` in the paper's order.

    ``include_advanced=False`` drops the academic methods (HoloClean,
    ZeroER), leaving only the simple practitioners' toolbox — the knob
    the ablation benchmarks use.
    """
    if error_type == MISSING_VALUES:
        return missing_value_methods(include_holoclean=include_advanced)
    if error_type == OUTLIERS:
        return outlier_methods(
            include_holoclean=include_advanced, random_state=random_state
        )
    if error_type == DUPLICATES:
        return duplicate_methods(include_zeroer=include_advanced)
    if error_type == INCONSISTENCIES:
        return inconsistency_methods()
    if error_type == MISLABELS:
        return mislabel_methods(seed=random_state)
    raise ValueError(
        f"unknown error type {error_type!r}; choose from {ERROR_TYPES}"
    )


def dirty_baseline(error_type: str) -> CleaningMethod:
    """The transformation producing the "dirty" variant of a dataset.

    For missing values the paper's dirty baseline is deletion (Table 5 —
    models cannot run on NaNs); for every other error type it is the
    identity.
    """
    from .base import IdentityCleaning

    if error_type == MISSING_VALUES:
        return DeletionCleaning()
    return IdentityCleaning()
