"""Paper Table 2 as code: detectors x repairs, composed declaratively.

Since the detector/repair decomposition the grid is *data*:
:data:`TABLE2_GRID` lists, per error type, each detection and the
repairs that consume it, and :func:`compose` builds the corresponding
:class:`~repro.cleaning.base.ComposedCleaning` from the
:data:`DETECTOR_BUILDERS` / :data:`REPAIR_BUILDERS` catalogs.  Adding a
new scenario combination — say mislabel detection repaired by deletion —
is a one-line grid entry, not a hand-written class.

``methods_for(error_type)`` returns fresh, unfitted cleaning methods in
the paper's order.  The runner iterates these to populate R1, and R3's
cleaning-method selection searches over exactly this space.
"""

from __future__ import annotations

from .base import (
    DUPLICATES,
    ERROR_TYPES,
    INCONSISTENCIES,
    MISLABELS,
    MISSING_VALUES,
    OUTLIERS,
    CleaningMethod,
    ComposedCleaning,
    Detector,
    Repair,
)
from .duplicates import KeyCollisionDetector
from .holoclean import HoloCleanRepair
from .inconsistencies import FingerprintDetector, MergeRepair
from .mislabels import ConfidentLearningDetector, RelabelRepair
from .missing import ImputationRepair, MissingValueDetector, RowDeletionRepair
from .outliers import OutlierImputationRepair, OutlierMaskDetector
from .zeroer import ZeroERDetector

#: detection label -> builder; every builder takes the study's
#: ``random_state`` (seeded detectors use it, the rest ignore it)
DETECTOR_BUILDERS: dict[str, object] = {
    "EmptyEntries": lambda random_state: MissingValueDetector(),
    "SD": lambda random_state: OutlierMaskDetector("SD", random_state=random_state),
    "IQR": lambda random_state: OutlierMaskDetector("IQR", random_state=random_state),
    "IF": lambda random_state: OutlierMaskDetector("IF", random_state=random_state),
    "KeyCollision": lambda random_state: KeyCollisionDetector(),
    "ZeroER": lambda random_state: ZeroERDetector(),
    "OpenRefine": lambda random_state: FingerprintDetector(),
    "cleanlab": lambda random_state: ConfidentLearningDetector(seed=random_state),
}

#: repair label -> builder.  "Deletion" resolves per error type (row
#: deletion for cell/row detections, cluster deletion for match pairs).
REPAIR_BUILDERS: dict[str, object] = {
    "MeanMode": lambda: ImputationRepair("mean", "mode"),
    "MeanDummy": lambda: ImputationRepair("mean", "dummy"),
    "MedianMode": lambda: ImputationRepair("median", "mode"),
    "MedianDummy": lambda: ImputationRepair("median", "dummy"),
    "ModeMode": lambda: ImputationRepair("mode", "mode"),
    "ModeDummy": lambda: ImputationRepair("mode", "dummy"),
    "Mean": lambda: OutlierImputationRepair("mean"),
    "Median": lambda: OutlierImputationRepair("median"),
    "Mode": lambda: OutlierImputationRepair("mode"),
    "HoloClean": lambda: HoloCleanRepair(),
    "Merge": lambda: MergeRepair(),
    "cleanlab": lambda: RelabelRepair(),
    "Deletion": lambda: RowDeletionRepair(),
}

#: Table 2, row by row: per error type, each detection with the repairs
#: composed on top of it, in the paper's order
TABLE2_GRID: dict[str, tuple[tuple[str, tuple[str, ...]], ...]] = {
    MISSING_VALUES: (
        (
            "EmptyEntries",
            (
                "MeanMode",
                "MeanDummy",
                "MedianMode",
                "MedianDummy",
                "ModeMode",
                "ModeDummy",
                "HoloClean",
            ),
        ),
    ),
    OUTLIERS: tuple(
        (detection, ("Mean", "Median", "Mode", "HoloClean"))
        for detection in ("SD", "IQR", "IF")
    ),
    DUPLICATES: (
        ("KeyCollision", ("Deletion",)),
        ("ZeroER", ("Deletion",)),
    ),
    INCONSISTENCIES: (("OpenRefine", ("Merge",)),),
    MISLABELS: (("cleanlab", ("cleanlab",)),),
}

#: the academic methods ``include_advanced=False`` drops — HoloClean as
#: a repair, ZeroER as a detection
ADVANCED = frozenset({"HoloClean", "ZeroER"})


def make_detector(detection: str, random_state: int | None = None) -> Detector:
    """A fresh detector for a Table 2 detection label."""
    if detection not in DETECTOR_BUILDERS:
        raise ValueError(
            f"unknown detection {detection!r}; choose from "
            f"{sorted(DETECTOR_BUILDERS)}"
        )
    return DETECTOR_BUILDERS[detection](random_state)


def make_repair(repair: str, error_type: str | None = None) -> Repair:
    """A fresh repair for a Table 2 repair label.

    "Deletion" is one repair for every detection shape —
    :meth:`DetectionResult.rows` keeps duplicate cluster anchors, so no
    per-error-type variant is needed; ``error_type`` stays in the
    signature for callers composing grids generically.
    """
    if repair not in REPAIR_BUILDERS:
        raise ValueError(
            f"unknown repair {repair!r}; choose from {sorted(REPAIR_BUILDERS)}"
        )
    return REPAIR_BUILDERS[repair]()


def compose(
    error_type: str,
    detection: str,
    repair: str,
    random_state: int | None = None,
) -> ComposedCleaning:
    """Build the ``detection/repair`` method for one Table 2 cell."""
    return ComposedCleaning(
        error_type,
        make_detector(detection, random_state=random_state),
        make_repair(repair, error_type=error_type),
    )


def table2_pairs(
    error_type: str, include_advanced: bool = True
) -> list[tuple[str, str]]:
    """The ``(detection, repair)`` labels of one Table 2 row, in order."""
    if error_type not in TABLE2_GRID:
        raise ValueError(
            f"unknown error type {error_type!r}; choose from {ERROR_TYPES}"
        )
    pairs = []
    for detection, repairs in TABLE2_GRID[error_type]:
        if not include_advanced and detection in ADVANCED:
            continue
        for repair in repairs:
            if not include_advanced and repair in ADVANCED:
                continue
            pairs.append((detection, repair))
    return pairs


def methods_for(
    error_type: str,
    include_advanced: bool = True,
    random_state: int | None = None,
) -> list[CleaningMethod]:
    """Fresh cleaning methods for ``error_type`` in the paper's order.

    ``include_advanced=False`` drops the academic methods (HoloClean,
    ZeroER), leaving only the simple practitioners' toolbox — the knob
    the ablation benchmarks use.
    """
    return [
        compose(error_type, detection, repair, random_state=random_state)
        for detection, repair in table2_pairs(
            error_type, include_advanced=include_advanced
        )
    ]


def missing_value_methods(include_holoclean: bool = True) -> list[CleaningMethod]:
    """The seven imputation repairs of Table 2 (deletion is the baseline)."""
    return methods_for(MISSING_VALUES, include_advanced=include_holoclean)


def outlier_methods(
    include_holoclean: bool = True, random_state: int | None = None
) -> list[CleaningMethod]:
    """Detector x repair grid: {SD, IQR, IF} x {mean, median, mode, HoloClean}."""
    return methods_for(
        OUTLIERS, include_advanced=include_holoclean, random_state=random_state
    )


def duplicate_methods(include_zeroer: bool = True) -> list[CleaningMethod]:
    """Key collision and ZeroER, both repaired by deletion."""
    return methods_for(DUPLICATES, include_advanced=include_zeroer)


def inconsistency_methods() -> list[CleaningMethod]:
    """OpenRefine-style fingerprint clustering with merge repair."""
    return methods_for(INCONSISTENCIES)


def mislabel_methods(seed: int | None = None) -> list[CleaningMethod]:
    """cleanlab-style confident learning."""
    return methods_for(MISLABELS, random_state=seed)


def dirty_baseline(error_type: str) -> CleaningMethod:
    """The transformation producing the "dirty" variant of a dataset.

    For missing values the paper's dirty baseline is deletion (Table 5 —
    models cannot run on NaNs); for every other error type it is the
    identity.
    """
    from .base import IdentityCleaning
    from .missing import DeletionCleaning

    if error_type == MISSING_VALUES:
        return DeletionCleaning()
    return IdentityCleaning()
