"""Mislabel detection and repair via confident learning (paper §III-B-5).

The paper cleans mislabels with *cleanlab*, whose published algorithm is
confident learning (Northcutt et al.): estimate the joint distribution of
(noisy label, true label) from out-of-sample predicted probabilities and
per-class confidence thresholds, then prune/fix the examples most likely
mislabeled.  :class:`ConfidentLearningDetector` implements that
algorithm:

1. k-fold cross-validated probabilities on the training split (a bag of
   fold models doubles as the probability source for unseen tables);
2. class thresholds ``t_j = mean p_j over examples labeled j``;
3. the confident joint ``C[i][j]``: examples labeled ``i`` whose
   probability for ``j`` reaches ``t_j`` (argmax over qualifying ``j``);
4. off-diagonal mass identifies label issues, pruned by noise rate —
   for each ``i != j``, the ``C[i][j]`` examples labeled ``i`` with the
   largest ``p_j`` are flagged.

Detection flags the issues (row mask) and carries each flagged example's
argmax label in the payload; :class:`RelabelRepair` rewrites the label
column from that payload.  Like every cleaning method, all statistics
are learned on train and then applied to either split.
"""

from __future__ import annotations

import numpy as np

from ..ml.linear import LogisticRegression
from ..table import Table
from ..table.encode import FeatureEncoder, LabelEncoder
from ..table.split import kfold_indices
from .base import (
    MISLABELS,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    check_fitted,
)


class ConfidentLearningDetector(Detector):
    """cleanlab-style mislabel detection.

    Parameters
    ----------
    n_folds:
        Cross-validation folds for out-of-sample probabilities.
    seed:
        Controls the fold assignment.
    """

    name = "cleanlab"

    def __init__(self, n_folds: int = 5, seed: int | None = None) -> None:
        self.n_folds = n_folds
        self.seed = seed

    def fit(self, train: Table) -> "ConfidentLearningDetector":
        self._encoder = FeatureEncoder().fit(train.features_table())
        self._labeler = LabelEncoder().fit(train.labels)
        X = self._encoder.transform(train.features_table())
        y = self._labeler.transform(train.labels)
        n_classes = self._labeler.n_classes

        rng = np.random.default_rng(self.seed)
        n_folds = max(2, min(self.n_folds, len(y)))
        self._fold_models: list[LogisticRegression] = []
        out_of_sample = np.zeros((len(y), n_classes))
        for train_idx, val_idx in kfold_indices(len(y), n_folds, rng):
            model = LogisticRegression()
            model.fit(X[train_idx], y[train_idx])
            proba = model.predict_proba(X[val_idx])
            out_of_sample[val_idx, : proba.shape[1]] = proba
            self._fold_models.append(model)

        self._thresholds = _class_thresholds(out_of_sample, y, n_classes)
        return self

    # -- confident-learning core ------------------------------------------------

    def find_label_issues(
        self, proba: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Boolean mask of likely-mislabeled examples.

        Implements the confident joint + prune-by-noise-rate rule using
        the thresholds fitted on the training split.
        """
        check_fitted(self, "_thresholds")
        n_classes = len(self._thresholds)
        n = len(y)

        # confident joint: example counted at (given i, confident j)
        confident_class = np.full(n, -1)
        for example in range(n):
            qualifying = np.nonzero(proba[example] >= self._thresholds)[0]
            if len(qualifying) == 0:
                continue
            confident_class[example] = qualifying[
                np.argmax(proba[example, qualifying])
            ]

        issues = np.zeros(n, dtype=bool)
        for given in range(n_classes):
            for confident in range(n_classes):
                if given == confident:
                    continue
                members = np.nonzero(
                    (y == given) & (confident_class == confident)
                )[0]
                count = len(members)
                if count == 0:
                    continue
                candidates = np.nonzero(y == given)[0]
                ranked = candidates[
                    np.argsort(-proba[candidates, confident])
                ][:count]
                issues[ranked] = True
        return issues

    def predict_proba(self, table: Table) -> np.ndarray:
        """Averaged fold-model probabilities (out-of-fold-ish for train)."""
        check_fitted(self, "_fold_models")
        X = self._encoder.transform(table.features_table())
        total = np.zeros((table.n_rows, self._labeler.n_classes))
        for model in self._fold_models:
            proba = model.predict_proba(X)
            total[:, : proba.shape[1]] += proba
        return total / len(self._fold_models)

    def detect(self, table: Table) -> DetectionResult:
        check_fitted(self, "_thresholds")
        proba = self.predict_proba(table)
        y = self._labeler.transform(table.labels)
        issues = self.find_label_issues(proba, y)
        payload = None
        if issues.any():
            repaired = y.copy()
            repaired[issues] = np.argmax(proba[issues], axis=1)
            payload = {"labels": self._labeler.inverse_transform(repaired)}
        return DetectionResult(table.n_rows, row_mask=issues, payload=payload)

    def fingerprint(self) -> tuple | None:
        if self.seed is None:
            return None  # unseeded fold assignment is nondeterministic
        return ("cleanlab", self.n_folds, self.seed)


class RelabelRepair(Repair):
    """Rewrite flagged labels to the detector's suggested classes."""

    name = "cleanlab"

    def fit(self, train: Table, detection: DetectionResult | None) -> "RelabelRepair":
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        if not detection.row_mask.any():
            return table
        return table.replace_labels(detection.payload["labels"])


class ConfidentLearningCleaning(ComposedCleaning):
    """cleanlab-style mislabel cleaning.

    Parameters
    ----------
    n_folds:
        Cross-validation folds for out-of-sample probabilities.
    seed:
        Controls the fold assignment.
    """

    def __init__(self, n_folds: int = 5, seed: int | None = None) -> None:
        super().__init__(
            MISLABELS,
            ConfidentLearningDetector(n_folds=n_folds, seed=seed),
            RelabelRepair(),
        )
        self.n_folds = n_folds
        self.seed = seed

    def find_label_issues(self, proba: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Compatibility passthrough to the detector's core rule."""
        return self.detector.find_label_issues(proba, y)

    def predict_proba(self, table: Table) -> np.ndarray:
        """Compatibility passthrough to the detector's fold models."""
        return self.detector.predict_proba(table)


def _class_thresholds(
    proba: np.ndarray, y: np.ndarray, n_classes: int
) -> np.ndarray:
    """t_j = mean predicted probability of class j over examples labeled j."""
    thresholds = np.zeros(n_classes)
    for cls in range(n_classes):
        members = y == cls
        if members.any():
            thresholds[cls] = proba[members, cls].mean()
        else:
            thresholds[cls] = 1.1  # unobserved class: nothing qualifies
    return thresholds
