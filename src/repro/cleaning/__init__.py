"""Cleaning substrate: detection + repair for the five CleanML error types.

Architecture (ISSUE 3, mirroring REIN's composable-stage benchmarking)
----------------------------------------------------------------------
Every Table 2 method is a composition of two first-class stages:

* :class:`Detector` — fitted on the training split only; maps any table
  to an immutable :class:`DetectionResult` (per-column cell masks, a
  per-row mask, or duplicate match pairs, plus optional repair hints in
  ``payload``).  ``detect`` is a pure function of ``(fitted state,
  table)``.
* :class:`Repair` — learns statistics from ``(train, train's
  detection)`` and then repairs any table as a pure function of
  ``(table, detection)``.

:class:`ComposedCleaning` packages one of each as a
:class:`CleaningMethod` — the stable interface the runner, relations and
persistence consume; its ``name`` is the paper's ``detection/repair``
label.  The registry (:mod:`repro.cleaning.registry`) holds the Table 2
grid as data (``TABLE2_GRID``) and composes it via ``compose(error_type,
detection, repair)``, so a new combination is a one-line entry.

Because detectors are pure functions of the training table, the
split-execution kernel shares them: one :class:`DetectionCache` per
split shares fits by ``(detector fingerprint, training-table
identity)`` and memoizes detections per ``(fitted detector, table)``,
so e.g. one isolation-forest fit serves
the mean, median, mode and HoloClean repairs.  See
:mod:`repro.core.runner` for the cache lifecycle and
``BENCH_cleaning_kernel.json`` for the measured win.

Typical extension::

    from repro.cleaning import ComposedCleaning, compose
    # one-line new scenario: mislabel detection, repaired by deletion
    method = compose("mislabels", "cleanlab", "Deletion", random_state=0)
    cleaned = method.fit(train).transform(test)
"""

from .base import (
    DUPLICATES,
    ERROR_TYPES,
    INCONSISTENCIES,
    MISLABELS,
    MISSING_VALUES,
    OUTLIERS,
    CleaningMethod,
    ComposedCleaning,
    DetectionCache,
    DetectionResult,
    Detector,
    IdentityCleaning,
    NotFittedError,
    Repair,
)
from .composite import CompositeCleaning
from .duplicates import (
    DuplicateDeletionRepair,
    KeyCollisionCleaning,
    KeyCollisionDetector,
    UnionFind,
    deduplicate,
    duplicate_row_mask,
)
from .holoclean import (
    HoloCleanEngine,
    HoloCleanMissingCleaning,
    HoloCleanOutlierCleaning,
    HoloCleanRepair,
)
from .human import ROW_ID, OracleCleaning
from .inconsistencies import (
    FingerprintDetector,
    InconsistencyCleaning,
    MergeRepair,
    RuleBasedInconsistencyCleaning,
    RulesDetector,
    cluster_values,
    fingerprint,
)
from .isolation_forest import IsolationForest
from .knn_impute import KNNImputationCleaning
from .mislabels import (
    ConfidentLearningCleaning,
    ConfidentLearningDetector,
    RelabelRepair,
)
from .missing import (
    DUMMY_VALUE,
    DeletionCleaning,
    ImputationCleaning,
    ImputationRepair,
    MissingValueDetector,
    RowDeletionRepair,
    detect_missing_rows,
    simple_imputation_methods,
)
from .outliers import (
    OutlierCleaning,
    OutlierDetector,
    OutlierImputationRepair,
    OutlierMaskDetector,
)
from .registry import (
    ADVANCED,
    DETECTOR_BUILDERS,
    REPAIR_BUILDERS,
    TABLE2_GRID,
    compose,
    dirty_baseline,
    duplicate_methods,
    inconsistency_methods,
    make_detector,
    make_repair,
    methods_for,
    mislabel_methods,
    missing_value_methods,
    outlier_methods,
    table2_pairs,
)
from .zeroer import (
    PairFeaturizer,
    TwoComponentGaussianMixture,
    ZeroERCleaning,
    ZeroERDetector,
)

__all__ = [
    "ADVANCED",
    "CleaningMethod",
    "ComposedCleaning",
    "CompositeCleaning",
    "ConfidentLearningCleaning",
    "ConfidentLearningDetector",
    "DETECTOR_BUILDERS",
    "DUMMY_VALUE",
    "DUPLICATES",
    "DeletionCleaning",
    "DetectionCache",
    "DetectionResult",
    "Detector",
    "DuplicateDeletionRepair",
    "ERROR_TYPES",
    "FingerprintDetector",
    "HoloCleanEngine",
    "HoloCleanMissingCleaning",
    "HoloCleanOutlierCleaning",
    "HoloCleanRepair",
    "INCONSISTENCIES",
    "IdentityCleaning",
    "ImputationCleaning",
    "ImputationRepair",
    "InconsistencyCleaning",
    "IsolationForest",
    "KNNImputationCleaning",
    "KeyCollisionCleaning",
    "KeyCollisionDetector",
    "MISLABELS",
    "MISSING_VALUES",
    "MergeRepair",
    "MissingValueDetector",
    "NotFittedError",
    "OUTLIERS",
    "OracleCleaning",
    "OutlierCleaning",
    "OutlierDetector",
    "OutlierImputationRepair",
    "OutlierMaskDetector",
    "PairFeaturizer",
    "REPAIR_BUILDERS",
    "ROW_ID",
    "RelabelRepair",
    "Repair",
    "RowDeletionRepair",
    "RuleBasedInconsistencyCleaning",
    "RulesDetector",
    "TABLE2_GRID",
    "TwoComponentGaussianMixture",
    "UnionFind",
    "ZeroERCleaning",
    "ZeroERDetector",
    "cluster_values",
    "compose",
    "deduplicate",
    "detect_missing_rows",
    "dirty_baseline",
    "duplicate_methods",
    "duplicate_row_mask",
    "fingerprint",
    "inconsistency_methods",
    "make_detector",
    "make_repair",
    "methods_for",
    "mislabel_methods",
    "missing_value_methods",
    "outlier_methods",
    "simple_imputation_methods",
    "table2_pairs",
]
