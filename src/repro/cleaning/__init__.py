"""Cleaning substrate: detection + repair for the five CleanML error types."""

from .base import (
    DUPLICATES,
    ERROR_TYPES,
    INCONSISTENCIES,
    MISLABELS,
    MISSING_VALUES,
    OUTLIERS,
    CleaningMethod,
    IdentityCleaning,
    NotFittedError,
)
from .duplicates import KeyCollisionCleaning, UnionFind, deduplicate
from .holoclean import (
    HoloCleanEngine,
    HoloCleanMissingCleaning,
    HoloCleanOutlierCleaning,
)
from .human import ROW_ID, OracleCleaning
from .inconsistencies import (
    InconsistencyCleaning,
    RuleBasedInconsistencyCleaning,
    cluster_values,
    fingerprint,
)
from .isolation_forest import IsolationForest
from .knn_impute import KNNImputationCleaning
from .mislabels import ConfidentLearningCleaning
from .missing import (
    DUMMY_VALUE,
    DeletionCleaning,
    ImputationCleaning,
    detect_missing_rows,
    simple_imputation_methods,
)
from .outliers import OutlierCleaning, OutlierDetector
from .registry import (
    dirty_baseline,
    duplicate_methods,
    inconsistency_methods,
    methods_for,
    mislabel_methods,
    missing_value_methods,
    outlier_methods,
)
from .zeroer import PairFeaturizer, TwoComponentGaussianMixture, ZeroERCleaning

__all__ = [
    "CleaningMethod",
    "ConfidentLearningCleaning",
    "DUMMY_VALUE",
    "DUPLICATES",
    "DeletionCleaning",
    "ERROR_TYPES",
    "HoloCleanEngine",
    "HoloCleanMissingCleaning",
    "HoloCleanOutlierCleaning",
    "INCONSISTENCIES",
    "IdentityCleaning",
    "ImputationCleaning",
    "InconsistencyCleaning",
    "IsolationForest",
    "KNNImputationCleaning",
    "KeyCollisionCleaning",
    "MISLABELS",
    "MISSING_VALUES",
    "NotFittedError",
    "OUTLIERS",
    "OracleCleaning",
    "OutlierCleaning",
    "OutlierDetector",
    "PairFeaturizer",
    "ROW_ID",
    "RuleBasedInconsistencyCleaning",
    "TwoComponentGaussianMixture",
    "UnionFind",
    "ZeroERCleaning",
    "cluster_values",
    "deduplicate",
    "detect_missing_rows",
    "dirty_baseline",
    "duplicate_methods",
    "fingerprint",
    "inconsistency_methods",
    "methods_for",
    "mislabel_methods",
    "missing_value_methods",
    "outlier_methods",
    "simple_imputation_methods",
]
