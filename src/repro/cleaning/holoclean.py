"""HoloClean-style probabilistic repair (Rekatsinas et al., VLDB 2017).

HoloClean infers the most likely value of a dirty cell by combining
holistic signals — value priors, co-occurrence with other attributes,
and quantitative correlations.  This lightweight engine keeps that
inference loop without the factor-graph machinery:

* **categorical cells** — posterior over the training domain of the
  column, combining a frequency prior with naive-Bayes co-occurrence
  likelihoods against the row's other categorical attributes (Laplace
  smoothed); the argmax value wins;
* **numeric cells** — ridge regression on the other numeric columns
  (statistics and coefficients from training rows), falling back to the
  training mean when no signal exists.

The same engine backs two Table-2 rows: missing values repaired by
HoloClean, and detected outliers repaired by HoloClean.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import (
    MISSING_VALUES,
    OUTLIERS,
    ComposedCleaning,
    DetectionResult,
    Repair,
    check_fitted,
)
from .missing import MissingValueDetector
from .outliers import OutlierMaskDetector

_SMOOTH = 1.0  # Laplace smoothing for co-occurrence likelihoods


class HoloCleanEngine:
    """Fit co-occurrence and regression models on train; infer any cell."""

    def fit(self, train: Table) -> "HoloCleanEngine":
        self._categorical = list(train.schema.categorical_features)
        self._numeric = list(train.schema.numeric_features)

        # value priors per categorical column
        self._priors: dict[str, dict[str, float]] = {}
        for name in self._categorical:
            counts = train.column(name).value_counts()
            total = sum(counts.values()) or 1
            self._priors[name] = {
                value: count / total for value, count in counts.items()
            }

        # pairwise co-occurrence counts between categorical columns
        self._cooccur: dict[tuple[str, str], dict[tuple[str, str], int]] = {}
        for target in self._categorical:
            for context in self._categorical:
                if target == context:
                    continue
                counts: dict[tuple[str, str], int] = {}
                target_values = train.column(target).values
                context_values = train.column(context).values
                for tv, cv in zip(target_values, context_values):
                    if tv is None or cv is None:
                        continue
                    counts[(tv, cv)] = counts.get((tv, cv), 0) + 1
                self._cooccur[(target, context)] = counts

        # ridge regressions between numeric columns
        self._means: dict[str, float] = {
            name: _safe(train.column(name).mean()) for name in self._numeric
        }
        self._stds: dict[str, float] = {}
        for name in self._numeric:
            std = train.column(name).std()
            self._stds[name] = std if std and not np.isnan(std) and std > 0 else 1.0
        self._regressions: dict[str, tuple[list[str], np.ndarray]] = {}
        for target in self._numeric:
            context = [name for name in self._numeric if name != target]
            if not context:
                continue
            rows = ~train.column(target).missing_mask()
            for name in context:
                rows &= ~train.column(name).missing_mask()
            if rows.sum() < max(5, len(context) + 2):
                continue
            design = np.column_stack(
                [
                    (train.column(name).values[rows] - self._means[name])
                    / self._stds[name]
                    for name in context
                ]
            )
            design = np.hstack([design, np.ones((design.shape[0], 1))])
            response = train.column(target).values[rows]
            gram = design.T @ design + 1.0 * np.eye(design.shape[1])
            coefficients = np.linalg.solve(gram, design.T @ response)
            self._regressions[target] = (context, coefficients)
        return self

    # -- inference ----------------------------------------------------------------

    def infer_categorical(self, table: Table, column: str, row: int) -> str | None:
        """Most probable value for a categorical cell given its row."""
        prior = self._priors.get(column)
        if not prior:
            return None
        scores = {value: np.log(p) for value, p in prior.items()}
        for context in self._categorical:
            if context == column:
                continue
            observed = table.column(context).values[row]
            if observed is None:
                continue
            counts = self._cooccur.get((column, context), {})
            domain = len(prior)
            for value in scores:
                joint = counts.get((value, observed), 0)
                marginal = sum(
                    counts.get((value, other), 0)
                    for other in {key[1] for key in counts if key[0] == value}
                )
                likelihood = (joint + _SMOOTH) / (marginal + _SMOOTH * domain)
                scores[value] += np.log(likelihood)
        return max(scores, key=lambda value: scores[value])

    def infer_numeric(self, table: Table, column: str, row: int) -> float:
        """Regression-based estimate for a numeric cell given its row."""
        if column in self._regressions:
            context, coefficients = self._regressions[column]
            features = []
            usable = True
            for name in context:
                value = table.column(name).values[row]
                if np.isnan(value):
                    usable = False
                    break
                features.append(
                    (value - self._means[name]) / self._stds[name]
                )
            if usable:
                features.append(1.0)
                return float(np.array(features) @ coefficients)
        return self._means.get(column, 0.0)

    def repair_cells(self, table: Table, cells: dict[str, np.ndarray]) -> Table:
        """Replace flagged cells (``{column: row mask}``) with inferences."""
        out = table
        for name, mask in cells.items():
            if not mask.any():
                continue
            column = out.column(name)
            values = column.values.copy()
            for row in np.nonzero(mask)[0]:
                if column.is_numeric:
                    values[row] = self.infer_numeric(out, name, int(row))
                else:
                    inferred = self.infer_categorical(out, name, int(row))
                    if inferred is not None:
                        values[row] = inferred
            out = out.with_column(name, Column(values, column.ctype))
        return out


class HoloCleanRepair(Repair):
    """HoloClean inference as a composable repair.

    Fitting blanks every *detected* training cell before the engine
    learns its co-occurrence / regression models, so they never learn
    from corrupt values (for missing-value detections the cells are
    already blank, so this is a no-op and the engine sees the raw
    training table, exactly as before the decomposition).  ``apply``
    infers a value for each flagged cell of the target table.
    """

    name = "HoloClean"
    needs_detection = True

    def fit(self, train: Table, detection: DetectionResult | None) -> "HoloCleanRepair":
        masked = train
        for name, mask in detection.cell_masks.items():
            if not mask.any():
                continue
            column = masked.column(name)
            values = column.values.copy()
            values[mask] = np.nan if column.is_numeric else None
            masked = masked.with_column(name, Column(values, column.ctype))
        self._engine = HoloCleanEngine().fit(masked)
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        check_fitted(self, "_engine")
        return self._engine.repair_cells(table, detection.cell_masks)


class HoloCleanMissingCleaning(ComposedCleaning):
    """Missing values repaired by HoloClean inference."""

    def __init__(self) -> None:
        super().__init__(
            MISSING_VALUES, MissingValueDetector(), HoloCleanRepair()
        )


class HoloCleanOutlierCleaning(ComposedCleaning):
    """Detected outliers repaired by HoloClean inference."""

    def __init__(self, detector: str = "IQR", random_state: int | None = None) -> None:
        super().__init__(
            OUTLIERS,
            OutlierMaskDetector(method=detector, random_state=random_state),
            HoloCleanRepair(),
        )


def _safe(value: float) -> float:
    return 0.0 if (isinstance(value, float) and np.isnan(value)) else float(value)
