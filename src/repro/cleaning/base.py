"""Cleaning-method abstraction.

Every entry of the paper's Table 2 is a (detection, repair) pair packaged
as a :class:`CleaningMethod`: ``fit`` learns whatever statistics the
method needs **from the training split only** (paper §IV-A step 2 — "all
statistics necessary for data cleaning, such as mean, are computed only
on the training set"), and ``transform`` applies the fitted method to any
table, train or test.

Error-type identifiers are centralised here so relations, queries and
registries all spell them the same way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..table import Table

#: canonical error-type identifiers (paper §III-B order)
MISSING_VALUES = "missing_values"
OUTLIERS = "outliers"
DUPLICATES = "duplicates"
INCONSISTENCIES = "inconsistencies"
MISLABELS = "mislabels"

ERROR_TYPES = (
    MISSING_VALUES,
    OUTLIERS,
    DUPLICATES,
    INCONSISTENCIES,
    MISLABELS,
)


class CleaningMethod(ABC):
    """One (detection, repair) pair from Table 2.

    Subclasses set :attr:`error_type`, :attr:`detection` and
    :attr:`repair` class attributes and implement :meth:`fit` /
    :meth:`transform`.  ``transform`` must return a *new* table; row
    counts may change (deletion repairs, duplicate removal) and labels
    may change (mislabel repair), but schemas never do.
    """

    error_type: str
    detection: str
    repair: str

    @property
    def name(self) -> str:
        """Human-readable "detection/repair" identifier."""
        return f"{self.detection}/{self.repair}"

    @abstractmethod
    def fit(self, train: Table) -> "CleaningMethod":
        """Learn detection thresholds / repair statistics from ``train``."""

    @abstractmethod
    def transform(self, table: Table) -> Table:
        """Apply the fitted cleaning to ``table`` (train or test)."""

    def fit_transform(self, train: Table) -> Table:
        """Convenience: ``fit(train)`` then ``transform(train)``."""
        return self.fit(train).transform(train)

    def affected_rows(self, table: Table) -> np.ndarray:
        """Boolean mask of rows the fitted method would touch.

        Default implementation compares ``transform`` output row-by-row,
        which is correct but slow; subclasses that know their detections
        override it.  Only meaningful for row-preserving methods.
        """
        cleaned = self.transform(table)
        if cleaned.n_rows != table.n_rows:
            raise ValueError(
                "affected_rows() is undefined for row-dropping methods"
            )
        changed = np.zeros(table.n_rows, dtype=bool)
        for i in range(table.n_rows):
            changed[i] = cleaned.row(i) != table.row(i)
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.error_type}: {self.name})"


class NotFittedError(RuntimeError):
    """Raised when ``transform`` is called before ``fit``."""


def check_fitted(method: CleaningMethod, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` exists."""
    if not hasattr(method, attribute):
        raise NotFittedError(
            f"{type(method).__name__} must be fitted before transform()"
        )


class IdentityCleaning(CleaningMethod):
    """No-op cleaning — the "dirty" arm of a comparison.

    Useful wherever the runner needs a uniform interface for the
    uncleaned variant.
    """

    error_type = "none"
    detection = "None"
    repair = "None"

    def fit(self, train: Table) -> "IdentityCleaning":
        return self

    def transform(self, table: Table) -> Table:
        return table
