"""Cleaning-method abstraction: detectors, repairs, and their composition.

Every entry of the paper's Table 2 is a (detection, repair) pair.  Since
the detector/repair decomposition (ISSUE 3) the two stages are first
class:

* a :class:`Detector` is fitted **on the training split only** (paper
  §IV-A step 2) and maps any table to an immutable
  :class:`DetectionResult` — per-column cell masks, a per-row mask, or
  duplicate match pairs;
* a :class:`Repair` learns its statistics from ``(train, train's
  detection)`` and is then a pure function of ``(table, detection)``.

:class:`ComposedCleaning` packages one detector and one repair as a
:class:`CleaningMethod`, the compatibility shell the rest of the system
(runner, relations, persistence, registries) consumes — its
``name = "detection/repair"`` identifiers, fitted semantics, and outputs
are byte-for-byte those of the pre-decomposition monoliths.

Because detectors are pure functions of the training table, a
:class:`DetectionCache` can share one fitted detector (and its
detections) across every repair variant that consumes it — the
split-execution kernel binds one per split so, e.g., the isolation
forest fits once for mean/median/mode/HoloClean repairs instead of four
times.  See :mod:`repro.core.runner` for the cache's lifecycle and
correctness argument.

Error-type identifiers are centralised here so relations, queries and
registries all spell them the same way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..table import Table

#: canonical error-type identifiers (paper §III-B order)
MISSING_VALUES = "missing_values"
OUTLIERS = "outliers"
DUPLICATES = "duplicates"
INCONSISTENCIES = "inconsistencies"
MISLABELS = "mislabels"

ERROR_TYPES = (
    MISSING_VALUES,
    OUTLIERS,
    DUPLICATES,
    INCONSISTENCIES,
    MISLABELS,
)

#: metrics hook, push-installed by :func:`repro.core.observability.install`
_metrics = None


class DetectionResult:
    """Immutable output of one detector on one table.

    Exactly one "shape" is primary per error type — cell masks (missing
    values, outliers, inconsistencies), a row mask (mislabels), or match
    pairs (duplicates) — but a result may carry several views (missing
    values populate both cell and row masks).  ``payload`` holds
    repair hints computed during detection (e.g. the canonical spelling
    of each inconsistent cell, or the suggested label of each flagged
    example), which is what keeps repairs pure functions of
    ``(detection, fitted stats, table)``.

    Results are treated as immutable: they may be cached and shared
    across repair variants, so repairs must never write into the masks
    or payload arrays.
    """

    __slots__ = ("n_rows", "cell_masks", "row_mask", "pairs", "payload")

    def __init__(
        self,
        n_rows: int,
        cell_masks: dict[str, np.ndarray] | None = None,
        row_mask: np.ndarray | None = None,
        pairs: list[tuple[int, int]] | None = None,
        payload: dict | None = None,
    ) -> None:
        self.n_rows = int(n_rows)
        self.cell_masks = cell_masks
        self.row_mask = row_mask
        self.pairs = None if pairs is None else tuple(pairs)
        self.payload = payload

    def rows(self) -> np.ndarray:
        """Boolean mask of rows this detection touches.

        For match pairs this is the rows a deduplication would *delete*
        (all cluster members but the first), matching what
        ``affected_rows`` always reported for duplicate methods.
        """
        if self.row_mask is not None:
            return self.row_mask
        if self.cell_masks is not None:
            if not self.cell_masks:
                return np.zeros(self.n_rows, dtype=bool)
            return np.logical_or.reduce(list(self.cell_masks.values()))
        if self.pairs is not None:
            from .duplicates import duplicate_row_mask

            return duplicate_row_mask(self.n_rows, list(self.pairs))
        return np.zeros(self.n_rows, dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shapes = [
            name
            for name, value in (
                ("cells", self.cell_masks),
                ("rows", self.row_mask),
                ("pairs", self.pairs),
            )
            if value is not None
        ]
        return f"DetectionResult(n_rows={self.n_rows}, {'+'.join(shapes) or 'empty'})"


class Detector(ABC):
    """Error detection fitted on train, applicable to any table.

    Subclasses set :attr:`name` (the Table 2 "detection" label) and
    implement :meth:`fit` / :meth:`detect`.  ``detect`` must be a pure
    function of ``(fitted state, table)`` — that purity is what licenses
    the :class:`DetectionCache`.
    """

    #: Table 2 detection label, e.g. ``"IQR"`` or ``"EmptyEntries"``
    name: str

    @abstractmethod
    def fit(self, train: Table) -> "Detector":
        """Learn detection state from the training split only."""

    @abstractmethod
    def detect(self, table: Table) -> DetectionResult:
        """Detect errors in ``table`` using train-fitted state."""

    def fit_detect(self, train: Table) -> DetectionResult | None:
        """Fit, returning train's detection when it falls out as a byproduct.

        Detectors whose ``fit`` already computes everything a
        ``detect(train)`` would (ZeroER scores the training pairs to fit
        its mixture) override this to hand the result to the cache for
        free.  The default fits and returns ``None``.
        """
        self.fit(train)
        return None

    def fingerprint(self) -> tuple | None:
        """Stable identity of this detector's *function*, or ``None``.

        Two detector instances with equal fingerprints fitted on the
        same table must produce bit-identical detections — the cache
        key contract.  Return ``None`` when that cannot be guaranteed
        (e.g. an unseeded isolation forest), which opts the detector
        out of caching entirely.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Repair(ABC):
    """Error repair: fitted from ``(train, detection)``, applied anywhere.

    Subclasses set :attr:`name` (the Table 2 "repair" label) and
    implement :meth:`fit` / :meth:`apply`.  ``apply`` must be a pure
    function of ``(fitted stats, table, detection)`` and must treat the
    detection as read-only (it may be cached and shared).
    """

    #: Table 2 repair label, e.g. ``"Mean"`` or ``"Deletion"``
    name: str

    #: whether :meth:`fit` consumes the training detection; repairs that
    #: only need raw training statistics leave this False so the naive
    #: (cache-off) path never detects more than the monoliths did
    needs_detection: bool = False

    @abstractmethod
    def fit(self, train: Table, detection: DetectionResult | None) -> "Repair":
        """Learn repair statistics from the training split (and, when
        :attr:`needs_detection`, its detection)."""

    @abstractmethod
    def apply(self, table: Table, detection: DetectionResult) -> Table:
        """Repair ``table``'s detected errors; returns a new table."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class DetectionCache:
    """Per-split memo of fitted detectors and their detections.

    Fits are shared by ``(detector fingerprint, training-table
    identity)`` — instances with equal fingerprints fitted on the same
    table are interchangeable, so the first fit serves them all.
    Detections are memoized by ``(fitted detector identity, table
    identity)``: a detection is a pure function of the *fitted*
    detector and the table, and keying on the fitted object (rather
    than the fingerprint alone) keeps same-fingerprint detectors that
    were fitted on different tables — composite stages fitted on
    per-composite intermediate tables, say — from ever sharing a
    detection.  Every entry holds strong references to its key objects
    so ``id()`` keys cannot be recycled by the allocator while cached.
    The runner creates one cache per split and clears it when the
    split's method iteration ends, so peak memory is bounded by one
    split's detections.

    With ``enabled=False`` every call passes straight through to the
    private detector — the naive reference path benchmarks time and
    tests compare against.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._detectors: dict[tuple, tuple[Table, Detector]] = {}
        self._detections: dict[tuple, tuple[Detector, Table, DetectionResult]] = {}
        #: (cache hits, cache misses) over fit + detect — benchmark telemetry
        self.hits = 0
        self.misses = 0

    def fit(self, detector: Detector, train: Table) -> Detector:
        """A detector equivalent to ``detector.fit(train)``, shared when possible."""
        if not self.enabled:
            detector.fit(train)
            return detector
        fingerprint = detector.fingerprint()
        if fingerprint is None:
            detector.fit(train)
            return detector
        key = (fingerprint, id(train))
        entry = self._detectors.get(key)
        if entry is None or entry[0] is not train:
            self.misses += 1
            if _metrics is not None:
                _metrics.count("cleaning.detection_cache.misses")
            byproduct = detector.fit_detect(train)
            entry = (train, detector)
            self._detectors[key] = entry
            if byproduct is not None:
                self._detections[(id(detector), id(train))] = (
                    detector,
                    train,
                    byproduct,
                )
        else:
            self.hits += 1
            if _metrics is not None:
                _metrics.count("cleaning.detection_cache.hits")
        return entry[1]

    def detect(self, detector: Detector, table: Table) -> DetectionResult:
        """``detector.detect(table)``, computed once per (fitted detector, table)."""
        if not self.enabled or detector.fingerprint() is None:
            return detector.detect(table)
        key = (id(detector), id(table))
        entry = self._detections.get(key)
        if entry is None or entry[0] is not detector or entry[1] is not table:
            self.misses += 1
            if _metrics is not None:
                _metrics.count("cleaning.detection_cache.misses")
            entry = (detector, table, detector.detect(table))
            self._detections[key] = entry
        else:
            self.hits += 1
            if _metrics is not None:
                _metrics.count("cleaning.detection_cache.hits")
        return entry[2]

    def clear(self) -> None:
        """Release all entries (and the tables/detectors they pin alive)."""
        if _metrics is not None:
            _metrics.gauge_max(
                "cleaning.detection_cache.peak_entries",
                len(self._detectors) + len(self._detections),
            )
        self._detectors.clear()
        self._detections.clear()


class CleaningMethod(ABC):
    """One (detection, repair) pair from Table 2.

    Subclasses set :attr:`error_type`, :attr:`detection` and
    :attr:`repair` class attributes and implement :meth:`fit` /
    :meth:`transform`.  ``transform`` must return a *new* table; row
    counts may change (deletion repairs, duplicate removal) and labels
    may change (mislabel repair), but schemas never do.

    Most methods are :class:`ComposedCleaning` instances built from a
    detector and a repair; this base class survives as the uniform
    interface (and as the escape hatch for methods that resist the
    decomposition, like the ground-truth oracle).
    """

    error_type: str
    detection: str
    repair: str

    @property
    def name(self) -> str:
        """Human-readable "detection/repair" identifier."""
        return f"{self.detection}/{self.repair}"

    @abstractmethod
    def fit(self, train: Table) -> "CleaningMethod":
        """Learn detection thresholds / repair statistics from ``train``."""

    @abstractmethod
    def transform(self, table: Table) -> Table:
        """Apply the fitted cleaning to ``table`` (train or test)."""

    def fit_transform(self, train: Table) -> Table:
        """Convenience: ``fit(train)`` then ``transform(train)``."""
        return self.fit(train).transform(train)

    def affected_rows(self, table: Table) -> np.ndarray:
        """Boolean mask of rows the fitted method would touch.

        Default implementation compares ``transform`` output with the
        input column-by-column (missing-aware, the same semantics as
        :meth:`Column.__eq__`); subclasses that know their detections
        override it.  Only meaningful for row-preserving methods.
        """
        cleaned = self.transform(table)
        if cleaned.n_rows != table.n_rows:
            raise ValueError(
                "affected_rows() is undefined for row-dropping methods"
            )
        changed = np.zeros(table.n_rows, dtype=bool)
        for name in table.schema.names:
            before = table.column(name)
            after = cleaned.column(name)
            if before.aliases(after):
                # transform passed the column through untouched (same
                # shared buffer, same view state) — provably equal, skip
                # the O(n) element comparison
                continue
            before_missing = before.missing_mask()
            after_missing = after.missing_mask()
            # a row changed where missingness flipped, or where both
            # values are present and differ
            changed |= before_missing != after_missing
            present = ~before_missing & ~after_missing
            differs = np.zeros(table.n_rows, dtype=bool)
            differs[present] = before.values[present] != after.values[present]
            changed |= differs
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.error_type}: {self.name})"


class ComposedCleaning(CleaningMethod):
    """A :class:`Detector` and a :class:`Repair` packaged as a method.

    ``fit(train)`` fits the detector, computes the training detection
    when the repair's statistics need it, and fits the repair;
    ``transform(table)`` detects on ``table`` and applies the repair.
    When a :class:`DetectionCache` is bound (:meth:`bind_cache`, done
    per split by the runner), both steps route through it, so repair
    variants sharing a detector share its fits and detections.

    The bound cache is deliberately transient: it is dropped on pickle
    and deepcopy (fresh per-split method copies start unbound), because
    cache entries pin split-local tables alive.
    """

    def __init__(self, error_type: str, detector: Detector, repair: Repair) -> None:
        self.error_type = error_type
        self.detector = detector
        self.repair_step = repair
        self._cache: DetectionCache | None = None

    @property
    def detection(self) -> str:  # type: ignore[override]
        return self.detector.name

    @property
    def repair(self) -> str:  # type: ignore[override]
        return self.repair_step.name

    def bind_cache(self, cache: DetectionCache | None) -> "ComposedCleaning":
        """Route detector fits/detections through a shared per-split cache."""
        self._cache = cache
        return self

    def fit(self, train: Table) -> "ComposedCleaning":
        if self._cache is not None:
            self.detector = self._cache.fit(self.detector, train)
        else:
            self.detector.fit(train)
        detection = self._detect(train) if self.repair_step.needs_detection else None
        self.repair_step.fit(train, detection)
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_fitted")
        return self.repair_step.apply(table, self._detect(table))

    def affected_rows(self, table: Table) -> np.ndarray:
        check_fitted(self, "_fitted")
        return self._detect(table).rows()

    def _detect(self, table: Table) -> DetectionResult:
        if self._cache is not None:
            return self._cache.detect(self.detector, table)
        return self.detector.detect(table)

    def __getstate__(self) -> dict:
        # pickle (worker shipping) and deepcopy (per-split fresh methods)
        # must never drag a split-local cache along
        state = dict(self.__dict__)
        state["_cache"] = None
        return state


class NotFittedError(RuntimeError):
    """Raised when ``transform`` is called before ``fit``."""


def check_fitted(method, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` exists."""
    if not hasattr(method, attribute):
        raise NotFittedError(
            f"{type(method).__name__} must be fitted before transform()"
        )


class IdentityCleaning(CleaningMethod):
    """No-op cleaning — the "dirty" arm of a comparison.

    Useful wherever the runner needs a uniform interface for the
    uncleaned variant.
    """

    error_type = "none"
    detection = "None"
    repair = "None"

    def fit(self, train: Table) -> "IdentityCleaning":
        return self

    def transform(self, table: Table) -> Table:
        return table
