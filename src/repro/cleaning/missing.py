"""Missing-value detection and repair (paper §III-B-1).

Detection is trivial — empty / NaN entries, packaged as
:class:`MissingValueDetector` so repairs compose with it like any other
Table 2 stage.  Repairs:

* **Deletion** — drop rows with missing feature values (the paper's
  "dirty" baseline for missing values, c.f. Table 5);
* **six simple imputations** — {mean, median, mode} for numeric columns
  crossed with {mode, dummy} for categorical columns
  (:class:`ImputationRepair`);
* **HoloClean** — probabilistic inference (in
  :mod:`repro.cleaning.holoclean`, registered via the registry).

All imputation statistics come from the training split.

Out-of-core fits (ISSUE 10)
---------------------------
On a memory-mapped table the naive fit/detect paths were the one place
the cleaning layer still materialized whole columns: ``column.mean()``
(and friends) caches the view's gathered values inside the table's
column objects, pinning the full column resident and defeating the PR 8
out-of-core discipline.  File-backed columns therefore compute their
fill statistics and missing masks through :meth:`Table.iter_chunks` —
per-chunk present values / masks are assembled *in row order* into one
contiguous array, so ``np.mean`` / ``np.median`` / the mode scan see
exactly the element sequence the resident path sees and the statistics
stay bit-identical (the mapped-vs-eager parity suite pins this).
Resident columns keep the original code path untouched.  The chunk and
full-column gather counts are exported as metrics
(``cleaning.fit_chunk_gathers`` / ``cleaning.fit_full_gathers``) so a
regression back to whole-column gathers is visible in any run report.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..table import Column, Table
from .base import (
    MISSING_VALUES,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    check_fitted,
)

NUMERIC_STRATEGIES = ("mean", "median", "mode")
CATEGORICAL_STRATEGIES = ("mode", "dummy")

#: the placeholder category used by dummy imputation
DUMMY_VALUE = "missing"

#: rows per chunk when fitting statistics on a file-backed column —
#: each chunk's gather is transient, so peak residency is one chunk
#: plus the accumulated present values, never the cached column
FIT_CHUNK_ROWS = 8192

#: metrics hook, push-installed by :func:`repro.core.observability.install`
_metrics = None


def _present_training_values(table: Table, name: str) -> np.ndarray:
    """``table.column(name).present_values()`` without caching the column.

    For a file-backed column the present values are assembled
    chunk-by-chunk in row order — element-for-element the array the
    resident path produces, so every statistic computed on it is
    bit-identical — while the table's column object stays an
    unmaterialized view over the map.  Resident columns take the
    original path.
    """
    column = table.column(name)
    if not column.is_file_backed:
        if _metrics is not None:
            _metrics.count("cleaning.fit_full_gathers")
        return column.present_values()
    pieces = []
    for chunk in table.iter_chunks(FIT_CHUNK_ROWS):
        pieces.append(chunk.column(name).present_values())
    if _metrics is not None:
        _metrics.count("cleaning.fit_chunk_gathers", len(pieces))
        _metrics.count("cleaning.fit_streamed_columns")
    if not pieces:
        dtype = np.float64 if column.is_numeric else object
        return np.empty(0, dtype=dtype)
    return np.concatenate(pieces)


def _mode_value(present: np.ndarray, numeric: bool):
    """:meth:`Column.mode` semantics over an assembled present array
    (ties broken by first occurrence, missing-only columns map to
    NaN / ``None``)."""
    if len(present) == 0:
        return float("nan") if numeric else None
    counts = Counter(present.tolist())
    best_count = max(counts.values())
    for value in present.tolist():
        if counts[value] == best_count:
            return value
    raise AssertionError("unreachable")  # pragma: no cover


def _column_missing_mask(table: Table, name: str) -> np.ndarray:
    """``table.column(name).missing_mask()`` without caching the column.

    The chunked masks concatenate in row order to exactly the mask the
    resident path computes; only file-backed columns stream.
    """
    column = table.column(name)
    if not column.is_file_backed:
        return column.missing_mask()
    masks = [
        chunk.column(name).missing_mask()
        for chunk in table.iter_chunks(FIT_CHUNK_ROWS)
    ]
    if _metrics is not None:
        _metrics.count("cleaning.detect_chunk_gathers", len(masks))
    if not masks:
        return np.zeros(0, dtype=bool)
    return np.concatenate(masks)


def detect_missing_rows(table: Table) -> np.ndarray:
    """Boolean mask of rows with at least one missing feature cell."""
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[table.rows_with_missing()] = True
    return mask


class MissingValueDetector(Detector):
    """Flag empty / NaN feature cells.

    Stateless — detection is a pure function of the target table — but
    fitted like every detector to keep the train-only discipline
    uniform.  Produces both per-column cell masks (for imputation and
    HoloClean repairs) and the row mask (for deletion).
    """

    name = "EmptyEntries"

    def fit(self, train: Table) -> "MissingValueDetector":
        self._fitted = True
        return self

    def detect(self, table: Table) -> DetectionResult:
        check_fitted(self, "_fitted")
        cell_masks = {
            name: _column_missing_mask(table, name)
            for name in table.schema.feature_names
        }
        if cell_masks:
            row_mask = np.logical_or.reduce(list(cell_masks.values()))
        else:
            row_mask = np.zeros(table.n_rows, dtype=bool)
        return DetectionResult(
            table.n_rows, cell_masks=cell_masks, row_mask=row_mask
        )

    def fingerprint(self) -> tuple:
        return ("EmptyEntries",)


class RowDeletionRepair(Repair):
    """Drop every flagged row — the universal deletion repair.

    Works with any detection shape, so composing it with a new detector
    is a one-line registry entry: for cell/row detections it drops the
    flagged rows, and for duplicate match pairs
    :meth:`DetectionResult.rows` already excludes each cluster's anchor,
    so this one repair is also Table 2's duplicate deletion.
    """

    name = "Deletion"

    def fit(self, train: Table, detection: DetectionResult | None) -> "RowDeletionRepair":
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        return table.mask(~detection.rows())


class ImputationRepair(Repair):
    """Simple imputation: numeric strategy x categorical strategy.

    Fill values are training-split statistics over *present* cells (no
    detection needed at fit time); ``apply`` fills the target table's
    flagged cells by boolean indexing.
    """

    def __init__(self, numeric: str, categorical: str) -> None:
        if numeric not in NUMERIC_STRATEGIES:
            raise ValueError(f"numeric strategy must be one of {NUMERIC_STRATEGIES}")
        if categorical not in CATEGORICAL_STRATEGIES:
            raise ValueError(
                f"categorical strategy must be one of {CATEGORICAL_STRATEGIES}"
            )
        self.numeric = numeric
        self.categorical = categorical

    @property
    def name(self) -> str:  # type: ignore[override]
        """Paper-style name, e.g. "MeanDummy"."""
        return f"{self.numeric.capitalize()}{self.categorical.capitalize()}"

    def fit(self, train: Table, detection: DetectionResult | None) -> "ImputationRepair":
        self._numeric_fill: dict[str, float] = {}
        self._categorical_fill: dict[str, str | None] = {}
        for name in train.schema.numeric_features:
            present = _present_training_values(train, name)
            if self.numeric == "mean":
                value = float(np.mean(present)) if len(present) else float("nan")
            elif self.numeric == "median":
                value = float(np.median(present)) if len(present) else float("nan")
            else:
                value = _mode_value(present, numeric=True)
            self._numeric_fill[name] = 0.0 if _is_nan(value) else float(value)
        for name in train.schema.categorical_features:
            if self.categorical == "dummy":
                self._categorical_fill[name] = DUMMY_VALUE
            else:
                mode = _mode_value(
                    _present_training_values(train, name), numeric=False
                )
                self._categorical_fill[name] = DUMMY_VALUE if mode is None else mode
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        check_fitted(self, "_numeric_fill")
        out = table
        for name, fill in self._numeric_fill.items():
            mask = detection.cell_masks[name]
            if not mask.any():
                continue
            column = out.column(name)
            # gather() yields the same bits values.copy() did, without
            # caching a resident materialization inside the (possibly
            # memory-mapped) input table's column object
            values = column.gather()
            values[mask] = fill
            out = out.with_column(name, Column(values, column.ctype))
        for name, fill in self._categorical_fill.items():
            mask = detection.cell_masks[name]
            if not mask.any():
                continue
            column = out.column(name)
            values = column.gather()
            values[mask] = fill
            out = out.with_column(name, Column(values, column.ctype))
        return out


class DeletionCleaning(ComposedCleaning):
    """Drop every row that has a missing feature value.

    The paper treats this as the *dirty* variant: a model cannot train
    on literal NaNs, so deletion is the do-nothing option.
    """

    def __init__(self) -> None:
        super().__init__(
            MISSING_VALUES, MissingValueDetector(), RowDeletionRepair()
        )


class ImputationCleaning(ComposedCleaning):
    """Simple imputation: numeric strategy x categorical strategy.

    Parameters
    ----------
    numeric:
        ``"mean"``, ``"median"`` or ``"mode"`` — the training-split
        statistic that fills numeric holes.
    categorical:
        ``"mode"`` (most frequent training value) or ``"dummy"`` (a
        literal ``"missing"`` category).
    """

    def __init__(self, numeric: str = "mean", categorical: str = "mode") -> None:
        super().__init__(
            MISSING_VALUES,
            MissingValueDetector(),
            ImputationRepair(numeric, categorical),
        )
        self.numeric = numeric
        self.categorical = categorical


def simple_imputation_methods() -> list[ImputationCleaning]:
    """The six imputation variants of Table 2, in paper order."""
    return [
        ImputationCleaning(numeric=numeric, categorical=categorical)
        for numeric in NUMERIC_STRATEGIES
        for categorical in CATEGORICAL_STRATEGIES
    ]


def _is_nan(value) -> bool:
    return isinstance(value, float) and np.isnan(value)
