"""Missing-value detection and repair (paper §III-B-1).

Detection is trivial — empty / NaN entries, packaged as
:class:`MissingValueDetector` so repairs compose with it like any other
Table 2 stage.  Repairs:

* **Deletion** — drop rows with missing feature values (the paper's
  "dirty" baseline for missing values, c.f. Table 5);
* **six simple imputations** — {mean, median, mode} for numeric columns
  crossed with {mode, dummy} for categorical columns
  (:class:`ImputationRepair`);
* **HoloClean** — probabilistic inference (in
  :mod:`repro.cleaning.holoclean`, registered via the registry).

All imputation statistics come from the training split.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import (
    MISSING_VALUES,
    ComposedCleaning,
    DetectionResult,
    Detector,
    Repair,
    check_fitted,
)

NUMERIC_STRATEGIES = ("mean", "median", "mode")
CATEGORICAL_STRATEGIES = ("mode", "dummy")

#: the placeholder category used by dummy imputation
DUMMY_VALUE = "missing"


def detect_missing_rows(table: Table) -> np.ndarray:
    """Boolean mask of rows with at least one missing feature cell."""
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[table.rows_with_missing()] = True
    return mask


class MissingValueDetector(Detector):
    """Flag empty / NaN feature cells.

    Stateless — detection is a pure function of the target table — but
    fitted like every detector to keep the train-only discipline
    uniform.  Produces both per-column cell masks (for imputation and
    HoloClean repairs) and the row mask (for deletion).
    """

    name = "EmptyEntries"

    def fit(self, train: Table) -> "MissingValueDetector":
        self._fitted = True
        return self

    def detect(self, table: Table) -> DetectionResult:
        check_fitted(self, "_fitted")
        cell_masks = {
            name: table.column(name).missing_mask()
            for name in table.schema.feature_names
        }
        if cell_masks:
            row_mask = np.logical_or.reduce(list(cell_masks.values()))
        else:
            row_mask = np.zeros(table.n_rows, dtype=bool)
        return DetectionResult(
            table.n_rows, cell_masks=cell_masks, row_mask=row_mask
        )

    def fingerprint(self) -> tuple:
        return ("EmptyEntries",)


class RowDeletionRepair(Repair):
    """Drop every flagged row — the universal deletion repair.

    Works with any detection shape, so composing it with a new detector
    is a one-line registry entry: for cell/row detections it drops the
    flagged rows, and for duplicate match pairs
    :meth:`DetectionResult.rows` already excludes each cluster's anchor,
    so this one repair is also Table 2's duplicate deletion.
    """

    name = "Deletion"

    def fit(self, train: Table, detection: DetectionResult | None) -> "RowDeletionRepair":
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        return table.mask(~detection.rows())


class ImputationRepair(Repair):
    """Simple imputation: numeric strategy x categorical strategy.

    Fill values are training-split statistics over *present* cells (no
    detection needed at fit time); ``apply`` fills the target table's
    flagged cells by boolean indexing.
    """

    def __init__(self, numeric: str, categorical: str) -> None:
        if numeric not in NUMERIC_STRATEGIES:
            raise ValueError(f"numeric strategy must be one of {NUMERIC_STRATEGIES}")
        if categorical not in CATEGORICAL_STRATEGIES:
            raise ValueError(
                f"categorical strategy must be one of {CATEGORICAL_STRATEGIES}"
            )
        self.numeric = numeric
        self.categorical = categorical

    @property
    def name(self) -> str:  # type: ignore[override]
        """Paper-style name, e.g. "MeanDummy"."""
        return f"{self.numeric.capitalize()}{self.categorical.capitalize()}"

    def fit(self, train: Table, detection: DetectionResult | None) -> "ImputationRepair":
        self._numeric_fill: dict[str, float] = {}
        self._categorical_fill: dict[str, str | None] = {}
        for name in train.schema.numeric_features:
            column = train.column(name)
            if self.numeric == "mean":
                value = column.mean()
            elif self.numeric == "median":
                value = column.median()
            else:
                value = column.mode()
            self._numeric_fill[name] = 0.0 if _is_nan(value) else float(value)
        for name in train.schema.categorical_features:
            if self.categorical == "dummy":
                self._categorical_fill[name] = DUMMY_VALUE
            else:
                mode = train.column(name).mode()
                self._categorical_fill[name] = DUMMY_VALUE if mode is None else mode
        return self

    def apply(self, table: Table, detection: DetectionResult) -> Table:
        check_fitted(self, "_numeric_fill")
        out = table
        for name, fill in self._numeric_fill.items():
            mask = detection.cell_masks[name]
            if not mask.any():
                continue
            column = out.column(name)
            values = column.values.copy()
            values[mask] = fill
            out = out.with_column(name, Column(values, column.ctype))
        for name, fill in self._categorical_fill.items():
            mask = detection.cell_masks[name]
            if not mask.any():
                continue
            column = out.column(name)
            values = column.values.copy()
            values[mask] = fill
            out = out.with_column(name, Column(values, column.ctype))
        return out


class DeletionCleaning(ComposedCleaning):
    """Drop every row that has a missing feature value.

    The paper treats this as the *dirty* variant: a model cannot train
    on literal NaNs, so deletion is the do-nothing option.
    """

    def __init__(self) -> None:
        super().__init__(
            MISSING_VALUES, MissingValueDetector(), RowDeletionRepair()
        )


class ImputationCleaning(ComposedCleaning):
    """Simple imputation: numeric strategy x categorical strategy.

    Parameters
    ----------
    numeric:
        ``"mean"``, ``"median"`` or ``"mode"`` — the training-split
        statistic that fills numeric holes.
    categorical:
        ``"mode"`` (most frequent training value) or ``"dummy"`` (a
        literal ``"missing"`` category).
    """

    def __init__(self, numeric: str = "mean", categorical: str = "mode") -> None:
        super().__init__(
            MISSING_VALUES,
            MissingValueDetector(),
            ImputationRepair(numeric, categorical),
        )
        self.numeric = numeric
        self.categorical = categorical


def simple_imputation_methods() -> list[ImputationCleaning]:
    """The six imputation variants of Table 2, in paper order."""
    return [
        ImputationCleaning(numeric=numeric, categorical=categorical)
        for numeric in NUMERIC_STRATEGIES
        for categorical in CATEGORICAL_STRATEGIES
    ]


def _is_nan(value) -> bool:
    return isinstance(value, float) and np.isnan(value)
