"""Missing-value detection and repair (paper §III-B-1).

Detection is trivial — empty / NaN entries.  Repairs:

* **Deletion** — drop rows with missing feature values (the paper's
  "dirty" baseline for missing values, c.f. Table 5);
* **six simple imputations** — {mean, median, mode} for numeric columns
  crossed with {mode, dummy} for categorical columns;
* **HoloClean** — probabilistic inference (in
  :mod:`repro.cleaning.holoclean`, registered via the registry).

All imputation statistics come from the training split.
"""

from __future__ import annotations

import numpy as np

from ..table import Column, Table
from .base import MISSING_VALUES, CleaningMethod, check_fitted

NUMERIC_STRATEGIES = ("mean", "median", "mode")
CATEGORICAL_STRATEGIES = ("mode", "dummy")

#: the placeholder category used by dummy imputation
DUMMY_VALUE = "missing"


def detect_missing_rows(table: Table) -> np.ndarray:
    """Boolean mask of rows with at least one missing feature cell."""
    mask = np.zeros(table.n_rows, dtype=bool)
    mask[table.rows_with_missing()] = True
    return mask


class DeletionCleaning(CleaningMethod):
    """Drop every row that has a missing feature value.

    Stateless (nothing to learn from train), but keeps the common
    interface.  The paper treats this as the *dirty* variant: a model
    cannot train on literal NaNs, so deletion is the do-nothing option.
    """

    error_type = MISSING_VALUES
    detection = "EmptyEntries"
    repair = "Deletion"

    def fit(self, train: Table) -> "DeletionCleaning":
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_fitted")
        return table.mask(~detect_missing_rows(table))

    def affected_rows(self, table: Table) -> np.ndarray:
        return detect_missing_rows(table)


class ImputationCleaning(CleaningMethod):
    """Simple imputation: numeric strategy x categorical strategy.

    Parameters
    ----------
    numeric:
        ``"mean"``, ``"median"`` or ``"mode"`` — the training-split
        statistic that fills numeric holes.
    categorical:
        ``"mode"`` (most frequent training value) or ``"dummy"`` (a
        literal ``"missing"`` category).
    """

    error_type = MISSING_VALUES
    detection = "EmptyEntries"

    def __init__(self, numeric: str = "mean", categorical: str = "mode") -> None:
        if numeric not in NUMERIC_STRATEGIES:
            raise ValueError(f"numeric strategy must be one of {NUMERIC_STRATEGIES}")
        if categorical not in CATEGORICAL_STRATEGIES:
            raise ValueError(
                f"categorical strategy must be one of {CATEGORICAL_STRATEGIES}"
            )
        self.numeric = numeric
        self.categorical = categorical

    @property
    def repair(self) -> str:  # type: ignore[override]
        """Paper-style name, e.g. "MeanDummy"."""
        return f"{self.numeric.capitalize()}{self.categorical.capitalize()}"

    def fit(self, train: Table) -> "ImputationCleaning":
        self._numeric_fill: dict[str, float] = {}
        self._categorical_fill: dict[str, str | None] = {}
        for name in train.schema.numeric_features:
            column = train.column(name)
            if self.numeric == "mean":
                value = column.mean()
            elif self.numeric == "median":
                value = column.median()
            else:
                value = column.mode()
            self._numeric_fill[name] = 0.0 if _is_nan(value) else float(value)
        for name in train.schema.categorical_features:
            if self.categorical == "dummy":
                self._categorical_fill[name] = DUMMY_VALUE
            else:
                mode = train.column(name).mode()
                self._categorical_fill[name] = DUMMY_VALUE if mode is None else mode
        return self

    def transform(self, table: Table) -> Table:
        check_fitted(self, "_numeric_fill")
        out = table
        for name, fill in self._numeric_fill.items():
            column = out.column(name)
            if column.n_missing() == 0:
                continue
            values = column.values.copy()
            values[np.isnan(values)] = fill
            out = out.with_column(name, Column(values, column.ctype))
        for name, fill in self._categorical_fill.items():
            column = out.column(name)
            if column.n_missing() == 0:
                continue
            values = column.values.copy()
            for i, value in enumerate(values):
                if value is None:
                    values[i] = fill
            out = out.with_column(name, Column(values, column.ctype))
        return out

    def affected_rows(self, table: Table) -> np.ndarray:
        return detect_missing_rows(table)


def simple_imputation_methods() -> list[ImputationCleaning]:
    """The six imputation variants of Table 2, in paper order."""
    return [
        ImputationCleaning(numeric=numeric, categorical=categorical)
        for numeric in NUMERIC_STRATEGIES
        for categorical in CATEGORICAL_STRATEGIES
    ]


def _is_nan(value) -> bool:
    return isinstance(value, float) and np.isnan(value)
