"""Isolation forest for outlier detection (Liu, Ting & Zhou 2008).

scikit-learn is unavailable, so the paper's third outlier detector is
implemented from scratch: an ensemble of isolation trees, each built on a
subsample by recursively picking a random feature and a random split
point.  Outliers isolate quickly, so their expected path length is short;
the anomaly score is ``2^(-E[h(x)] / c(n))`` and the ``contamination``
quantile of training scores becomes the decision threshold (the paper
uses contamination 0.01).
"""

from __future__ import annotations

import numpy as np

_EULER_MASCHERONI = 0.5772156649015329


def average_path_length(n: int | np.ndarray) -> np.ndarray:
    """c(n): expected path length of an unsuccessful BST search."""
    n = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n)
    big = n > 2
    out[big] = 2.0 * (np.log(n[big] - 1.0) + _EULER_MASCHERONI) - 2.0 * (
        n[big] - 1.0
    ) / n[big]
    out[n == 2] = 1.0
    return out


class _IsolationNode:
    __slots__ = ("feature", "threshold", "left", "right", "size")

    def __init__(self, size: int) -> None:
        self.feature: int | None = None
        self.threshold = 0.0
        self.left: "_IsolationNode | None" = None
        self.right: "_IsolationNode | None" = None
        self.size = size


class IsolationForest:
    """Unsupervised anomaly detector.

    Parameters
    ----------
    n_estimators:
        Number of isolation trees.
    max_samples:
        Subsample size per tree (capped at the data size).
    contamination:
        Expected fraction of outliers; sets the score threshold.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 0.01,
        random_state: int | None = None,
    ) -> None:
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.contamination = contamination
        self.random_state = random_state

    def fit(self, X: np.ndarray) -> "IsolationForest":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) == 0:
            raise ValueError("X must be a non-empty 2-D array")
        rng = np.random.default_rng(self.random_state)
        sample_size = min(self.max_samples, len(X))
        # height limit from the paper: ceil(log2(subsample size))
        self._height_limit = int(np.ceil(np.log2(max(sample_size, 2))))
        self._sample_size = sample_size
        self._trees = []
        for _ in range(self.n_estimators):
            rows = rng.choice(len(X), size=sample_size, replace=False)
            self._trees.append(self._grow(X[rows], depth=0, rng=rng))
        train_scores = self.score(X)
        self.threshold_ = float(
            np.quantile(train_scores, 1.0 - self.contamination)
        )
        return self

    def _grow(self, X: np.ndarray, depth: int, rng: np.random.Generator) -> _IsolationNode:
        node = _IsolationNode(size=len(X))
        if depth >= self._height_limit or len(X) <= 1:
            return node
        spans = X.max(axis=0) - X.min(axis=0)
        candidates = np.nonzero(spans > 0.0)[0]
        if len(candidates) == 0:
            return node
        feature = int(rng.choice(candidates))
        low, high = X[:, feature].min(), X[:, feature].max()
        threshold = float(rng.uniform(low, high))
        mask = X[:, feature] < threshold
        if not mask.any() or mask.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], depth + 1, rng)
        node.right = self._grow(X[~mask], depth + 1, rng)
        return node

    def score(self, X: np.ndarray) -> np.ndarray:
        """Anomaly scores in (0, 1); larger = more anomalous."""
        X = np.asarray(X, dtype=np.float64)
        depths = np.zeros(len(X))
        for tree in self._trees:
            depths += self._path_lengths(tree, X)
        mean_depth = depths / len(self._trees)
        c = average_path_length(np.array([self._sample_size]))[0]
        return np.power(2.0, -mean_depth / max(c, 1e-9))

    def predict_outliers(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the score exceeds the threshold."""
        if not hasattr(self, "threshold_"):
            raise RuntimeError("IsolationForest must be fitted first")
        return self.score(X) > self.threshold_

    def _path_lengths(self, root: _IsolationNode, X: np.ndarray) -> np.ndarray:
        out = np.zeros(len(X))
        self._descend(root, X, np.arange(len(X)), 0, out)
        return out

    def _descend(self, node, X, indices, depth, out) -> None:
        if len(indices) == 0:
            return
        if node.feature is None:
            # unresolved leaves get the expected extra depth for their size
            extra = average_path_length(np.array([max(node.size, 1)]))[0]
            out[indices] = depth + extra
            return
        mask = X[indices, node.feature] < node.threshold
        self._descend(node.left, X, indices[mask], depth + 1, out)
        self._descend(node.right, X, indices[~mask], depth + 1, out)
