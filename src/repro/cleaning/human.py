"""Human (oracle) cleaning — paper §VII-C.

The paper compares automatic cleaning against manual cleaning: humans
filled in missing values (BabyProduct), corrected mislabels (Clothing),
and curated denial-constraint rules for inconsistencies.  Our synthetic
datasets plant errors on top of a known clean version, so the "human"
here is an oracle that restores planted cells / labels from the ground
truth — the idealized endpoint of manual effort, which is exactly the
role human cleaning plays in Table 19.

Alignment works through a hidden row-id column every generated dataset
carries (see :mod:`repro.datasets.base`): splits and row drops preserve
it, so ground-truth lookup survives any shuffling.
"""

from __future__ import annotations

import numpy as np

from ..table import Table
from .base import CleaningMethod

#: name of the hidden alignment column carried by generated datasets
ROW_ID = "__row_id__"


class OracleCleaning(CleaningMethod):
    """Restore ground-truth values for one error type.

    Parameters
    ----------
    ground_truth:
        The clean table, carrying the same hidden row-id column as the
        dirty table it will be applied to.
    error_type:
        Which error's cells to restore: the oracle fixes *labels* for
        mislabels and *feature cells* otherwise.  Duplicate rows (row
        ids absent from the ground truth) are dropped.
    """

    detection = "Human"
    repair = "Human"

    def __init__(self, ground_truth: Table, error_type: str) -> None:
        if ROW_ID not in ground_truth.schema:
            raise ValueError("ground truth must carry the hidden row-id column")
        self.error_type = error_type
        self._truth_by_id = {
            int(ground_truth.column(ROW_ID).values[i]): i
            for i in range(ground_truth.n_rows)
        }
        self._truth = ground_truth

    def fit(self, train: Table) -> "OracleCleaning":
        return self  # the oracle needs no statistics

    def transform(self, table: Table) -> Table:
        if ROW_ID not in table.schema:
            raise ValueError("table lacks the hidden row-id column")
        ids = table.column(ROW_ID).values

        # duplicates: planted copies carry ids unknown to the ground truth
        keep = np.array(
            [int(row_id) in self._truth_by_id for row_id in ids], dtype=bool
        )
        out = table.mask(keep)
        ids = out.column(ROW_ID).values
        truth_rows = [self._truth_by_id[int(row_id)] for row_id in ids]

        if self.error_type == "mislabels":
            label = out.schema.label
            truth_labels = self._truth.column(label).values
            return out.replace_labels([truth_labels[i] for i in truth_rows])

        for name in out.schema.feature_names:
            if name == ROW_ID or name not in self._truth.schema:
                continue
            truth_values = self._truth.column(name).values
            out = out.with_values(
                name, [truth_values[i] for i in truth_rows]
            )
        return out
